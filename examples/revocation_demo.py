#!/usr/bin/env python3
"""Revocation (paper requirement iii), demonstrated adversarially.

Scenario from the paper: C-Services discontinues service for the
apartment complex.  The script shows that:

1. before revocation the client reads everything under its attribute;
2. revocation is a single policy-row operation — no device is touched;
3. after revocation the client cannot retrieve new messages, and keys
   it extracted earlier do not open messages deposited later (the
   per-message nonce makes every message a fresh IBE identity);
4. other clients are unaffected.

Run:  python examples/revocation_demo.py
"""

from repro import Deployment, DeploymentConfig, RevocationManager
from repro.errors import ProtocolError, UnknownIdentityError
from repro.ibe.kem import HybridCiphertext, hybrid_decrypt
from repro.errors import DecryptionError

ATTRIBUTE = "ELECTRIC-GLENBROOK-SV-CA"


def main() -> None:
    deployment = Deployment.build(DeploymentConfig(preset="TEST80", rsa_bits=1024))
    meter = deployment.new_smart_device("ELECTRIC-GLENBROOK-001")
    victim = deployment.new_receiving_client(
        "c-services", "pw-victim", attributes=[ATTRIBUTE]
    )
    survivor = deployment.new_receiving_client(
        "grid-operator", "pw-survivor", attributes=[ATTRIBUTE]
    )
    manager = RevocationManager(deployment)

    # Phase 1: normal operation.
    meter.deposit(deployment.sd_channel(meter.device_id), ATTRIBUTE, b"reading-1")
    before = victim.retrieve_and_decrypt(
        deployment.rc_mws_channel(victim.rc_id),
        deployment.rc_pkg_channel(victim.rc_id),
    )
    print(f"[before] c-services reads {len(before)} message(s): "
          f"{[m.plaintext for m in before]}")
    exposure = manager.effective_exposure(victim.rc_id)
    print(f"[before] keys c-services has extracted: {len(exposure)}")

    # Phase 2: revoke.  One policy operation, nothing touches the meter.
    event = manager.revoke(victim.rc_id, ATTRIBUTE)
    print(f"\n[revoke] removed grant {event.attribute!r} from "
          f"{event.rc_id!r} at t={event.at_us}")

    # Phase 3: the meter deposits as if nothing happened.
    meter.deposit(deployment.sd_channel(meter.device_id), ATTRIBUTE, b"reading-2")

    # The revoked client is turned away at the MWS.
    try:
        victim.retrieve_and_decrypt(
            deployment.rc_mws_channel(victim.rc_id),
            deployment.rc_pkg_channel(victim.rc_id),
        )
        raise SystemExit("BUG: revoked client retrieved messages")
    except (ProtocolError, UnknownIdentityError) as exc:
        print(f"[after ] c-services retrieval rejected: {exc}")

    # Even with the *stolen ciphertext* of reading-2 and every key it
    # extracted before revocation, the client cannot decrypt it.
    record = deployment.mws.message_db.fetch(2)
    ciphertext = HybridCiphertext.from_bytes(
        record.ciphertext, deployment.public_params.params
    )
    old_keys = list(victim._key_cache.values())  # all pre-revocation keys
    failures = 0
    for key_point in old_keys:
        try:
            hybrid_decrypt(deployment.public_params, key_point, ciphertext)
        except DecryptionError:
            failures += 1
    print(f"[after ] tried {len(old_keys)} hoarded key(s) against the new "
          f"ciphertext: {failures} failed, {len(old_keys) - failures} worked")
    assert failures == len(old_keys)

    # The survivor reads both messages normally.
    messages = survivor.retrieve_and_decrypt(
        deployment.rc_mws_channel(survivor.rc_id),
        deployment.rc_pkg_channel(survivor.rc_id),
    )
    print(f"[after ] grid-operator unaffected, reads {len(messages)} messages")
    assert {m.plaintext for m in messages} == {b"reading-1", b"reading-2"}
    print("\nrevocation demo OK")


if __name__ == "__main__":
    main()
