#!/usr/bin/env python3
"""Per-segment attributes inside one logical message (paper §VIII).

The paper's future-work section imagines a meter message with three
parts — daily consumption, error notifications, events — each relevant
to a different provider, where "sharing of this information would break
confidentiality".  Here one logical message is split into three
segments, each encrypted under its own attribute; the billing company
decrypts only consumption, the maintenance company only errors+events,
and each can *see how many* segments were withheld without learning
anything about their content.

Run:  python examples/segmented_messages.py
"""

from repro import Deployment, DeploymentConfig
from repro.core import Segment, SegmentedMessage, reassemble


def main() -> None:
    deployment = Deployment.build(DeploymentConfig(preset="TEST80", rsa_bits=1024))
    meter = deployment.new_smart_device("ELECTRIC-GLENBROOK-001")

    billing = deployment.new_receiving_client(
        "billing-co", "pw-billing", attributes=["CONSUMPTION-GLENBROOK"]
    )
    maintenance = deployment.new_receiving_client(
        "maintenance-co",
        "pw-maint",
        attributes=["ERRORS-GLENBROOK", "EVENTS-GLENBROOK"],
    )

    message = SegmentedMessage(
        group_id=20100315,
        segments=[
            Segment("CONSUMPTION-GLENBROOK", b"total=12.5kWh;peak=1.8kW"),
            Segment("ERRORS-GLENBROOK", b"errors=clock-drift(2s)"),
            Segment("EVENTS-GLENBROOK", b"events=power-cycle@03:12"),
        ],
    )
    ids = message.deposit_all(meter, deployment.sd_channel(meter.device_id))
    print(f"deposited 1 logical message as {len(ids)} segment ciphertexts")

    for name, client in (("billing-co", billing), ("maintenance-co", maintenance)):
        decrypted = client.retrieve_and_decrypt(
            deployment.rc_mws_channel(client.rc_id),
            deployment.rc_pkg_channel(client.rc_id),
        )
        groups = reassemble([m.plaintext for m in decrypted])
        entry = groups[message.group_id]
        visible = {index: body.decode() for index, body in entry["parts"].items()}
        hidden = entry["total"] - len(entry["parts"])
        print(f"\n{name}:")
        for index in sorted(visible):
            print(f"  segment {index}: {visible[index]}")
        print(f"  ({hidden} segment(s) present but not readable)")

    print("\nsegmentation demo OK")


if __name__ == "__main__":
    main()
