#!/usr/bin/env python3
"""Distributed PKG via threshold cryptography (paper §VIII future work).

The paper worries that the PKG is a key escrow: whoever holds ``s`` can
decrypt everything.  "A form of threshold cryptography may also be
considered, to create a distributed PKG, instead of a key escrow."

This example splits the master secret 3-of-5 across share servers and
shows that:

* any 3 servers jointly extract a working private key,
* 2 colluding servers produce nothing useful,
* a malicious server returning a corrupted partial is caught by the
  commitment check before it can poison the combined key,
* encryptors are oblivious — ciphertexts and public parameters are
  identical to the centralised deployment.

Run:  python examples/threshold_pkg.py
"""

from repro import setup
from repro.core.conventions import identity_string
from repro.errors import AuthenticationError, DecryptionError
from repro.ibe.kem import hybrid_decrypt, hybrid_encrypt
from repro.mathlib.rand import HmacDrbg
from repro.pairing.hashing import hash_to_point
from repro.pkg.distributed import DistributedPkg, KeyShareCombiner


def main() -> None:
    master = setup("TEST80", rng=HmacDrbg(b"threshold-demo"))
    dpkg = DistributedPkg(master, threshold=3, share_count=5,
                          rng=HmacDrbg(b"dealer"))
    combiner = KeyShareCombiner(master.public, dpkg.commitments(), threshold=3)
    print("master secret split 3-of-5 across share servers "
          f"{[share.index for share in dpkg.shares]}")

    # A device encrypts exactly as before — nothing changes on its side.
    identity = identity_string("ELECTRIC-GLENBROOK-SV-CA", b"\x01" * 16)
    ciphertext = hybrid_encrypt(
        master.public, identity, b"reading=42.7kWh", rng=HmacDrbg(b"enc")
    )
    print("device encrypted one message (unaware the PKG is distributed)")

    q_id = hash_to_point(master.public.params, identity)

    # Any 3 servers extract.
    partials = {s.index: s.extract_partial(q_id) for s in dpkg.shares[1:4]}
    key = combiner.combine(identity, partials)
    plaintext = hybrid_decrypt(master.public, key, ciphertext)
    print(f"servers {sorted(partials)} combined a key; decrypted: {plaintext!r}")

    # 2 servers are not enough: even combining optimally gives garbage.
    weak = KeyShareCombiner(master.public, dpkg.commitments(), threshold=2)
    two = {s.index: s.extract_partial(q_id) for s in dpkg.shares[:2]}
    wrong_key = weak.combine(identity, two, verify=False)
    try:
        hybrid_decrypt(master.public, wrong_key, ciphertext)
        raise SystemExit("BUG: 2 shares decrypted a 3-threshold secret")
    except DecryptionError:
        print("servers [1, 2] alone: decryption failed (threshold holds)")

    # A malicious server is caught by the commitment pairing check.
    corrupted = dict(partials)
    first = sorted(corrupted)[0]
    corrupted[first] = 2 * corrupted[first]
    try:
        combiner.combine(identity, corrupted)
        raise SystemExit("BUG: corrupted partial accepted")
    except AuthenticationError as exc:
        print(f"malicious server {first} detected: {exc}")

    print("\nthreshold PKG demo OK")


if __name__ == "__main__":
    main()
