#!/usr/bin/env python3
"""Quickstart: one device, one receiving client, end-to-end confidentiality.

Builds the full four-party deployment (smart device, MWS, PKG, RC) in
process, deposits an encrypted meter reading addressed by *attribute*
(not identity), and retrieves + decrypts it as the receiving client.

Run:  python examples/quickstart.py
"""

from repro import Deployment, DeploymentConfig

ATTRIBUTE = "ELECTRIC-GLENBROOK-SV-CA"


def main() -> None:
    # 1. Stand up PKG + MWS + simulated network.  TEST80 keeps the
    #    pure-Python pairing fast; use MED256/STD512 for bigger groups.
    deployment = Deployment.build(DeploymentConfig(preset="TEST80", rsa_bits=1024))
    print(f"deployment up: params={deployment.public_params.params!r}")

    # 2. Register a smart device (receives a shared MAC key) and a
    #    receiving client (password + one attribute grant).
    meter = deployment.new_smart_device("ELECTRIC-GLENBROOK-001")
    utility = deployment.new_receiving_client(
        "c-services", "s3cret-password", attributes=[ATTRIBUTE]
    )
    print(f"registered device {meter.device_id!r} and client {utility.rc_id!r}")

    # 3. The device deposits a reading.  It only names the attribute —
    #    it has no idea which companies will read this.
    response = meter.deposit(
        deployment.sd_channel(meter.device_id),
        ATTRIBUTE,
        b"reading=42.7kWh;period=2010-03-15T10:15",
    )
    print(f"deposited message id={response.message_id}")

    # 4. The MWS stored only ciphertext: prove it.
    record = deployment.mws.message_db.fetch(response.message_id)
    assert b"42.7" not in record.ciphertext
    print(f"MWS stored {len(record.ciphertext)} opaque bytes under "
          f"attribute {record.attribute!r}")

    # 5. The client authenticates, fetches, round-trips the PKG for the
    #    per-message private key, and decrypts.
    messages = utility.retrieve_and_decrypt(
        deployment.rc_mws_channel(utility.rc_id),
        deployment.rc_pkg_channel(utility.rc_id),
    )
    for message in messages:
        print(f"decrypted message {message.message_id}: "
              f"{message.plaintext.decode()}")
    assert messages[0].plaintext.startswith(b"reading=42.7kWh")
    print("quickstart OK")


if __name__ == "__main__":
    main()
