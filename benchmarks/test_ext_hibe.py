"""EXT-I — hierarchical IBE cost vs hierarchy depth (§VIII delegated PKGs).

Encrypt cost grows by one point multiplication per level; decrypt by
one pairing per level; delegation (sub-domain key extraction) is one
hash-to-point + one point multiplication regardless of depth.
"""

from __future__ import annotations

import pytest

from repro.ibe.hibe import HibeRoot
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset

PARAMS = get_preset("TEST80")
ROOT = HibeRoot(PARAMS, rng=HmacDrbg(b"ext-i"))
PATHS = {
    1: ("REGION-SV",),
    2: ("REGION-SV", "GLENBROOK"),
    3: ("REGION-SV", "GLENBROOK", "ELECTRIC"),
}
REGION = ROOT.domain("REGION-SV")
COMPLEX = REGION.domain("GLENBROOK")
KEYS = {
    1: ROOT.extract("REGION-SV"),
    2: REGION.extract("GLENBROOK"),
    3: COMPLEX.extract("ELECTRIC"),
}
CIPHERTEXTS = {
    depth: ROOT.encrypt(path, b"m" * 64, rng=HmacDrbg(bytes([depth])))
    for depth, path in PATHS.items()
}


@pytest.mark.benchmark(group="ext-i-hibe")
@pytest.mark.parametrize("depth", [1, 2, 3])
def test_ext_i_encrypt_by_depth(benchmark, depth):
    benchmark(ROOT.encrypt, PATHS[depth], b"m" * 64)


@pytest.mark.benchmark(group="ext-i-hibe")
@pytest.mark.parametrize("depth", [1, 2, 3])
def test_ext_i_decrypt_by_depth(benchmark, depth):
    plaintext = benchmark(ROOT.decrypt, KEYS[depth], CIPHERTEXTS[depth])
    assert plaintext == b"m" * 64


@pytest.mark.benchmark(group="ext-i-hibe")
def test_ext_i_delegation_cost(benchmark):
    """One child-key extraction at an interior domain."""
    benchmark(COMPLEX.extract, "ELECTRIC")
