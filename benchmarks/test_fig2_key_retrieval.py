"""FIG2 — private-key retrieval (paper Fig. 2).

The figure shows the RC obtaining per-message private keys from the PKG
after depositing/retrieving through the MWS.  We benchmark each leg of
that flow: token opening, PKG authentication, and the ``AID || Nonce ->
sI`` extraction round-trip (the figure's core arrow).
"""

from __future__ import annotations

import itertools

import pytest


@pytest.fixture(scope="module")
def key_retrieval_world(loaded_world):
    deployment, _device, client = loaded_world
    response = client.retrieve(deployment.rc_mws_channel(client.rc_id))
    token = client.open_token(response.token)
    pkg_channel = deployment.rc_pkg_channel(client.rc_id)
    session_id = client.authenticate_to_pkg(pkg_channel, token)
    return deployment, client, response, token, pkg_channel, session_id


@pytest.mark.benchmark(group="fig2-key-retrieval")
def test_fig2_open_token(benchmark, key_retrieval_world):
    """RSA hybrid-open of the token (RC-side, one per retrieval)."""
    _dep, client, response, _token, _chan, _sid = key_retrieval_world
    benchmark(client.open_token, response.token)


@pytest.mark.benchmark(group="fig2-key-retrieval")
def test_fig2_pkg_authentication(benchmark, key_retrieval_world):
    """Ticket + authenticator handshake (one per retrieval session)."""
    _dep, client, _response, token, pkg_channel, _sid = key_retrieval_world
    benchmark(client.authenticate_to_pkg, pkg_channel, token)


@pytest.mark.benchmark(group="fig2-key-retrieval")
def test_fig2_key_extraction_roundtrip(benchmark, key_retrieval_world):
    """One ``AID || Nonce -> sI`` extraction (one per message).

    A fresh nonce is used per iteration so the client cache never hits —
    this measures the true PKG round-trip incl. the extraction pairing
    work and the session-key sealing.
    """
    _dep, client, response, token, pkg_channel, session_id = key_retrieval_world
    message = response.messages[0]
    counter = itertools.count()

    def fetch_fresh_key():
        nonce = next(counter).to_bytes(16, "big")
        return client.fetch_key(
            pkg_channel, session_id, token.session_key,
            message.attribute_id, nonce,
        )

    benchmark(fetch_fresh_key)


@pytest.mark.benchmark(group="fig2-key-retrieval")
def test_fig2_cached_key_fetch(benchmark, key_retrieval_world):
    """The same fetch when the client key cache hits (static-key mode)."""
    _dep, client, response, token, pkg_channel, session_id = key_retrieval_world
    message = response.messages[0]
    client.fetch_key(
        pkg_channel, session_id, token.session_key,
        message.attribute_id, message.nonce,
    )
    benchmark(
        client.fetch_key,
        pkg_channel, session_id, token.session_key,
        message.attribute_id, message.nonce,
    )


@pytest.mark.benchmark(group="fig2-key-retrieval")
def test_fig2_decrypt_with_key(benchmark, key_retrieval_world):
    """Final step of the figure: decrypting the message with ``sI``."""
    _dep, client, response, token, pkg_channel, session_id = key_retrieval_world
    message = response.messages[0]
    private_point = client.fetch_key(
        pkg_channel, session_id, token.session_key,
        message.attribute_id, message.nonce,
    )
    benchmark(client.decrypt_message, message, private_point)
