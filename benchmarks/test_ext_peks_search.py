"""EXT-H — encrypted keyword search (paper reference [1], PEKS).

Cost profile of searchable tags: tagging at the device, trapdoor
derivation at the authority, and the server-side linear scan (one
pairing per tested tag) at increasing index sizes.
"""

from __future__ import annotations

import pytest

from repro.ibe.peks import PeksScheme, SearchableIndex
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset

PARAMS = get_preset("TEST80")
SCHEME = PeksScheme.generate(PARAMS, rng=HmacDrbg(b"ext-h"))


@pytest.mark.benchmark(group="ext-h-peks")
def test_ext_h_tag_cost(benchmark):
    """Device-side: one tag = one pairing + one point multiplication."""
    benchmark(SCHEME.tag, "outage")


@pytest.mark.benchmark(group="ext-h-peks")
def test_ext_h_trapdoor_cost(benchmark):
    """Authority-side: one scalar multiplication."""
    benchmark(SCHEME.trapdoor, "outage")


@pytest.mark.benchmark(group="ext-h-peks")
def test_ext_h_single_test_cost(benchmark):
    """Server-side: one pairing per tested tag."""
    tag = SCHEME.tag("outage")
    trapdoor = SCHEME.trapdoor("outage")
    assert benchmark(SCHEME.test, trapdoor, tag)


@pytest.mark.benchmark(group="ext-h-peks-scan")
@pytest.mark.parametrize("index_size", [10, 50])
def test_ext_h_index_scan(benchmark, index_size):
    """Linear scan over the index (the PEKS cost model: O(n) pairings)."""
    index = SearchableIndex(SCHEME)
    for record_id in range(index_size):
        keyword = "outage" if record_id % 10 == 0 else f"routine-{record_id % 7}"
        index.add(record_id, [SCHEME.tag(keyword)])
    trapdoor = SCHEME.trapdoor("outage")
    hits = benchmark(index.search, trapdoor)
    assert len(hits) == index_size // 10
