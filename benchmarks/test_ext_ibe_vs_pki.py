"""EXT-A — IBE warehouse vs certificate-PKI baseline.

Quantifies the paper's §I claim that certificate PKI is unsuitable:
per-message device cost as the recipient set grows (IBE: flat; PKI:
linear), and the key-management operations behind enrolment and
revocation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_deployment
from repro.mathlib.rand import HmacDrbg
from repro.pki.baseline import PkiBaselineDeployment
from repro.sim.clock import SimClock

RECIPIENT_COUNTS = [1, 3, 5]


@pytest.fixture(scope="module")
def ibe_world():
    deployment = fresh_deployment(seed=b"ext-a")
    device = deployment.new_smart_device("exta-meter")
    # One attribute covers any number of recipients.
    for index in range(max(RECIPIENT_COUNTS)):
        deployment.new_receiving_client(
            f"exta-rc-{index}", "pw", attributes=["EXTA-ATTR"]
        )
    return deployment, device


@pytest.fixture(scope="module")
def pki_world():
    baseline = PkiBaselineDeployment(
        rsa_bits=768, rng=HmacDrbg(b"ext-a-pki"), clock=SimClock()
    )
    for index in range(max(RECIPIENT_COUNTS)):
        baseline.enroll_recipient(f"exta-rc-{index}")
    return baseline


@pytest.mark.benchmark(group="ext-a-deposit")
@pytest.mark.parametrize("recipients", RECIPIENT_COUNTS)
def test_ext_a_ibe_deposit(benchmark, ibe_world, recipients):
    """IBE device cost is independent of the recipient count — the same
    single attribute-encrypted ciphertext serves 1 or 5 companies."""
    _deployment, device = ibe_world
    benchmark(device.build_deposit, "EXTA-ATTR", b"reading" * 16)


@pytest.mark.benchmark(group="ext-a-deposit")
@pytest.mark.parametrize("recipients", RECIPIENT_COUNTS)
def test_ext_a_pki_deposit(benchmark, pki_world, recipients):
    """PKI device cost grows with recipients (one RSA wrap each)."""
    names = [f"exta-rc-{index}" for index in range(recipients)]
    benchmark(pki_world.deposit, b"reading" * 16, names)


@pytest.mark.benchmark(group="ext-a-keymgmt")
def test_ext_a_ibe_enrolment(benchmark, ibe_world):
    """IBE enrolment of an existing RC into a new recipient class:
    a single policy-row insert (devices untouched)."""
    deployment, _device = ibe_world
    counter = iter(range(10_000_000))

    def enrol():
        deployment.mws.grant("exta-rc-0", f"NEW-CLASS-{next(counter)}")

    benchmark(enrol)


@pytest.mark.benchmark(group="ext-a-keymgmt")
def test_ext_a_pki_enrolment(benchmark):
    """PKI enrolment: RSA keygen + certificate issuance (seconds, not
    microseconds — run few rounds)."""
    baseline = PkiBaselineDeployment(
        rsa_bits=768, rng=HmacDrbg(b"ext-a-enrol"), clock=SimClock()
    )
    counter = iter(range(10_000_000))

    def enrol():
        baseline.enroll_recipient(f"new-rc-{next(counter)}")

    benchmark.pedantic(enrol, rounds=3, iterations=1)


@pytest.mark.benchmark(group="ext-a-keymgmt")
def test_ext_a_ibe_revocation(benchmark, ibe_world):
    """IBE revocation: policy-row delete + re-grant (measured together
    to keep state stationary)."""
    deployment, _device = ibe_world

    def revoke_and_regrant():
        deployment.mws.revoke("exta-rc-1", "EXTA-ATTR")
        deployment.mws.grant("exta-rc-1", "EXTA-ATTR")

    benchmark(revoke_and_regrant)


@pytest.mark.benchmark(group="ext-a-keymgmt")
def test_ext_a_pki_revocation(benchmark, pki_world):
    """PKI revocation: CRL update; every device must consult the CRL on
    its next chain validation (cache invalidated)."""
    benchmark(pki_world.revoke_recipient, "exta-rc-2")


def test_ext_a_shape_assertion(ibe_world, pki_world):
    """The structural claim itself, independent of timing: IBE ships one
    ciphertext regardless of audience; PKI ships one wrapped key per
    recipient."""
    _deployment, device = ibe_world
    request = device.build_deposit("EXTA-ATTR", b"x")
    envelope = pki_world.deposit(b"x", [f"exta-rc-{i}" for i in range(5)])
    assert len(envelope.wrapped_keys) == 5
    # The IBE deposit has no per-recipient component at all.
    assert b"exta-rc" not in request.to_bytes()
