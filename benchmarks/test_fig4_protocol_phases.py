"""FIG4 — the three-phase protocol interaction (paper Fig. 4).

Benchmarks each lane of the sequence diagram separately (SD–MWS,
MWS–RC, RC–PKG) and the full three-phase run, and prints the per-phase
latency/byte split — the quantitative rendering of the figure.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import fresh_deployment
from repro.core import ProtocolDriver


@pytest.fixture(scope="module")
def phase_world():
    deployment = fresh_deployment(seed=b"fig4")
    device = deployment.new_smart_device("fig4-meter")
    client = deployment.new_receiving_client(
        "fig4-rc", "pw", attributes=["FIG4-ATTR"]
    )
    driver = ProtocolDriver(deployment)
    yield deployment, device, client, driver
    # CI's bench-smoke job sets OBS_DUMP_PATH to archive the metrics,
    # trace and crypto-profile state accumulated across the benchmarks.
    dump_path = os.environ.get("OBS_DUMP_PATH")
    if dump_path:
        with open(dump_path, "w", encoding="utf-8") as handle:
            handle.write(
                deployment.obs_dump_json(
                    meta={"workload": "bench-fig4"}, indent=2
                )
            )
    deployment.close()


@pytest.mark.benchmark(group="fig4-phases")
def test_fig4_phase1_sd_mws(benchmark, phase_world):
    """Lane 1: SD -> MWS deposit (encrypt, MAC, verify, store)."""
    deployment, device, _client, _driver = phase_world
    channel = deployment.sd_channel("fig4-meter")
    benchmark(device.deposit, channel, "FIG4-ATTR", b"reading" * 8)


@pytest.mark.benchmark(group="fig4-phases")
def test_fig4_phase2_mws_rc(benchmark, phase_world):
    """Lane 2: RC auth + message fetch + token issue."""
    deployment, _device, client, _driver = phase_world
    channel = deployment.rc_mws_channel("fig4-rc")
    benchmark(client.retrieve, channel)


@pytest.mark.benchmark(group="fig4-phases")
def test_fig4_phase3_rc_pkg(benchmark, phase_world):
    """Lane 3: token open + PKG auth + one extraction + decrypt."""
    deployment, device, client, driver = phase_world
    # Exactly one message in the warehouse for a stable per-run shape.
    for record in list(deployment.mws.message_db.by_time_range(0, 2**63)):
        deployment.mws.message_db.delete(record.message_id)
    device.deposit(deployment.sd_channel("fig4-meter"), "FIG4-ATTR", b"one")

    def phase3():
        client._key_cache.clear()  # measure a fresh extraction each round
        transcript = driver.run_retrieval(client)
        return transcript.phase("RC-PKG")

    timing = benchmark(phase3)
    assert timing.network_messages >= 2  # auth + key fetch


@pytest.mark.benchmark(group="fig4-phases")
def test_fig4_full_protocol(benchmark, phase_world):
    """All three lanes, one message end to end; prints the split."""
    deployment, device, client, driver = phase_world

    def full_run():
        for record in list(deployment.mws.message_db.by_time_range(0, 2**63)):
            deployment.mws.message_db.delete(record.message_id)
        return driver.run_full(device, client, [("FIG4-ATTR", b"end-to-end")])

    transcript = benchmark(full_run)
    assert [m.plaintext for m in transcript.retrieved] == [b"end-to-end"]
    print("\nFIG4 per-phase split (last run):")
    for timing in transcript.timings:
        print(
            f"  {timing.phase:8} {timing.duration_s * 1000:8.2f} ms  "
            f"{timing.network_messages} msgs  {timing.network_bytes} bytes"
        )
