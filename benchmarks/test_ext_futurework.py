"""EXT-F / EXT-G — the implemented §VIII future-work features.

EXT-F: device authentication modes — shared-key MAC (the paper's
prototype) vs MAC + identity-based signature (the future-work upgrade):
device-side and SDA-side cost of non-repudiation.

EXT-G: distributed infrastructure — threshold PKG extraction (t-of-n
share servers + verified combination) vs centralised extraction, and
edge distribution-point ingest + pull throughput.
"""

from __future__ import annotations

import itertools

import pytest

from benchmarks.conftest import fresh_deployment
from repro.core.conventions import identity_string
from repro.ibe import setup
from repro.ibe.signatures import IbeSigner, IbeVerifier, extract_signing_key
from repro.mathlib.rand import HmacDrbg
from repro.mws.distribution import (
    BufferedDeposit,
    DistributionCoordinator,
    DistributionPoint,
)
from repro.pairing.hashing import hash_to_point
from repro.pkg.distributed import DistributedPkg, KeyShareCombiner

MASTER = setup("TEST80", rng=HmacDrbg(b"ext-fg"))


# ---------------------------------------------------------------------------
# EXT-F: MAC-only vs MAC + identity-based signature
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ext-f-device-auth")
@pytest.mark.parametrize("mode", ["mac", "mac+ibs"])
def test_ext_f_device_deposit_cost(benchmark, mode):
    """Device-side deposit build cost by authentication mode."""
    deployment = fresh_deployment(
        seed=b"ext-f-" + mode.encode(),
        use_device_signatures=(mode == "mac+ibs"),
    )
    device = deployment.new_smart_device("extf-meter")
    benchmark(device.build_deposit, "EXTF", b"reading" * 8)
    deployment.close()


@pytest.mark.benchmark(group="ext-f-device-auth")
@pytest.mark.parametrize("mode", ["mac", "mac+ibs"])
def test_ext_f_sda_verify_cost(benchmark, mode):
    """SDA-side verification cost: HMAC check vs HMAC + two pairings."""
    deployment = fresh_deployment(
        seed=b"ext-f-sda-" + mode.encode(),
        use_device_signatures=(mode == "mac+ibs"),
    )
    device = deployment.new_smart_device("extf-meter")

    def make_request():
        return (device.build_deposit("EXTF", b"reading" * 8),), {}

    benchmark.pedantic(
        deployment.mws.sda.authenticate, setup=make_request, rounds=15
    )
    deployment.close()


@pytest.mark.benchmark(group="ext-f-device-auth")
def test_ext_f_raw_sign(benchmark):
    """One Cha–Cheon signature (two scalar multiplications)."""
    key = extract_signing_key(MASTER, b"extf-device")
    signer = IbeSigner(MASTER.public, b"extf-device", key, rng=HmacDrbg(b"s"))
    benchmark(signer.sign, b"payload" * 16)


@pytest.mark.benchmark(group="ext-f-device-auth")
def test_ext_f_raw_verify(benchmark):
    """One signature verification (two pairings)."""
    key = extract_signing_key(MASTER, b"extf-device")
    signer = IbeSigner(MASTER.public, b"extf-device", key, rng=HmacDrbg(b"s"))
    verifier = IbeVerifier(MASTER.public)
    signature = signer.sign(b"payload" * 16)
    result = benchmark(verifier.verify, b"extf-device", b"payload" * 16, signature)
    assert result


# ---------------------------------------------------------------------------
# EXT-G: threshold PKG and distribution points
# ---------------------------------------------------------------------------

IDENTITY = identity_string("EXTG-ATTR", b"\x07" * 16)
Q_ID = hash_to_point(MASTER.public.params, IDENTITY)
DPKG = DistributedPkg(MASTER, threshold=3, share_count=5, rng=HmacDrbg(b"deal"))
COMBINER = KeyShareCombiner(MASTER.public, DPKG.commitments(), threshold=3)


@pytest.mark.benchmark(group="ext-g-pkg")
def test_ext_g_centralised_extract(benchmark):
    """Baseline: one extraction by the centralised PKG."""
    benchmark(MASTER.extract, IDENTITY)


@pytest.mark.benchmark(group="ext-g-pkg")
def test_ext_g_share_server_partial(benchmark):
    """One share server's work per extraction (one scalar mult)."""
    share = DPKG.shares[0]
    benchmark(share.extract_partial, Q_ID)


@pytest.mark.benchmark(group="ext-g-pkg")
@pytest.mark.parametrize("verify", [True, False], ids=["verified", "unverified"])
def test_ext_g_combine(benchmark, verify):
    """Client-side combination of 3 partials; verification costs two
    pairings per partial (the price of catching a malicious server)."""
    partials = {
        share.index: share.extract_partial(Q_ID) for share in DPKG.shares[:3]
    }
    key = benchmark(COMBINER.combine, IDENTITY, partials, verify)
    assert key == MASTER.extract(IDENTITY).point


@pytest.mark.benchmark(group="ext-g-distribution")
def test_ext_g_edge_ingest(benchmark):
    """Distribution-point deposit acceptance (edge-local SDA + buffer)."""
    deployment = fresh_deployment(seed=b"ext-g-edge")
    point = DistributionPoint("edge", deployment.mws.device_keys, deployment.clock)
    device = deployment.new_smart_device("extg-meter")

    def ingest():
        response = point.handle_deposit(device.build_deposit("EXTG", b"r" * 32))
        assert response.accepted

    benchmark(ingest)
    deployment.close()


@pytest.mark.benchmark(group="ext-g-distribution")
def test_ext_g_pull_throughput(benchmark):
    """Coordinator pull of a 100-message batch into the warehouse."""
    deployment = fresh_deployment(seed=b"ext-g-pull")
    point = DistributionPoint("edge", deployment.mws.device_keys, deployment.clock)
    coordinator = DistributionCoordinator(deployment.mws)
    coordinator.register_point(point)
    device = deployment.new_smart_device("extg-meter")
    requests = [device.build_deposit("EXTG", b"r" * 32) for _ in range(100)]
    counter = itertools.count()

    def setup():
        # Refill the buffer with uniquified copies so dedup never trips.
        tag = next(counter)
        for index, request in enumerate(requests):
            clone = type(request)(**{**request.__dict__})
            clone.mac = (
                request.mac[:-8]
                + tag.to_bytes(4, "big")
                + index.to_bytes(4, "big")
            )
            point._buffer.append(
                BufferedDeposit(
                    request=clone, accepted_at_us=deployment.clock.now_us()
                )
            )
        return (), {}

    def pull():
        stored = coordinator.pull("edge", batch_size=200)
        assert stored == 100

    benchmark.pedantic(pull, setup=setup, rounds=10)
    deployment.close()


# ---------------------------------------------------------------------------
# EXT-F addendum: gatekeeper credential modes (password vs IdP assertion)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ext-f-rc-auth")
def test_ext_f_gatekeeper_password_auth(benchmark):
    """The paper's password-blob credential check."""
    deployment = fresh_deployment(seed=b"ext-f-gk-pw")
    client = deployment.new_receiving_client("rc", "pw", attributes=["A"])

    def make_request():
        return (client.build_retrieve_request(),), {}

    benchmark.pedantic(
        deployment.mws.gatekeeper.authenticate, setup=make_request, rounds=20
    )
    deployment.close()


@pytest.mark.benchmark(group="ext-f-rc-auth")
def test_ext_f_gatekeeper_assertion_auth(benchmark):
    """The §VIII IdP-assertion credential check (RSA verify)."""
    from repro.policy.assertions import AssertionValidator, IdentityProvider

    deployment = fresh_deployment(seed=b"ext-f-gk-sso")
    idp = IdentityProvider(
        "idp", deployment.clock, HmacDrbg(b"bench-idp"), rsa_bits=768
    )
    validator = AssertionValidator(
        "mws", deployment.clock, trusted_issuers={"idp": idp.public_key}
    )
    deployment.mws.gatekeeper._assertion_validator = validator
    client = deployment.new_receiving_client("rc", "pw", attributes=["A"])

    def make_request():
        assertion = idp.issue("rc", "mws")
        return (
            (client.build_retrieve_request(assertion=assertion.to_bytes()),),
            {},
        )

    benchmark.pedantic(
        deployment.mws.gatekeeper.authenticate, setup=make_request, rounds=20
    )
    deployment.close()
