"""TAB1 — the Identity–Attribute–AttributeID mapping (paper Table 1).

Rebuilds the exact five-row table from the paper, verifies every row
and the retrieval semantics it implies, prints it in the paper's
layout, and benchmarks the policy operations behind it.
"""

from __future__ import annotations

import itertools

import pytest

from repro.storage.policy_db import PolicyDatabase

PAPER_ROWS = [
    ("IDRC1", "A1", 1),
    ("IDRC1", "A2", 2),
    ("IDRC2", "A1", 3),
    ("IDRC3", "A3", 4),
    ("IDRC4", "A4", 5),
]


def build_table() -> PolicyDatabase:
    policy_db = PolicyDatabase()
    for identity, attribute, _expected_aid in PAPER_ROWS:
        policy_db.grant(identity, attribute)
    return policy_db


def test_table1_rows_reproduced_exactly():
    policy_db = build_table()
    rows = [
        (row.identity, row.attribute, row.attribute_id)
        for row in policy_db.table()
    ]
    assert rows == PAPER_ROWS
    print("\nTABLE 1 (reproduced):")
    print(f"  {'Identity':10}{'Attribute':12}{'Attribute ID':12}")
    for identity, attribute, attribute_id in rows:
        print(f"  {identity:10}{attribute:12}{attribute_id:<12}")


def test_table1_retrieval_semantics():
    """What the table *means*: IDRC1 resolves to {A1, A2}; A1 is shared
    by IDRC1 and IDRC2 under different AIDs."""
    policy_db = build_table()
    assert policy_db.attributes_for("IDRC1") == {1: "A1", 2: "A2"}
    assert policy_db.attributes_for("IDRC2") == {3: "A1"}
    assert policy_db.identities_for("A1") == ["IDRC1", "IDRC2"]
    # Same attribute, different opaque ids — the unlinkability property.
    aid_rc1 = next(
        aid for aid, attr in policy_db.attributes_for("IDRC1").items()
        if attr == "A1"
    )
    aid_rc2 = next(iter(policy_db.attributes_for("IDRC2")))
    assert aid_rc1 != aid_rc2


@pytest.mark.benchmark(group="table1-policy")
def test_table1_lookup_cost(benchmark):
    """attributes_for() — executed once per RC retrieval."""
    policy_db = build_table()
    benchmark(policy_db.attributes_for, "IDRC1")


@pytest.mark.benchmark(group="table1-policy")
def test_table1_grant_cost(benchmark):
    """grant() — the whole cost of adding a recipient (requirement v)."""
    policy_db = PolicyDatabase()
    counter = itertools.count()

    def grant():
        index = next(counter)
        policy_db.grant(f"rc-{index}", f"attr-{index}")

    benchmark(grant)


@pytest.mark.benchmark(group="table1-policy")
def test_table1_lookup_cost_at_scale(benchmark):
    """Lookup with 10k rows in the table — requirement iv at PD level."""
    policy_db = PolicyDatabase()
    for index in range(10_000):
        policy_db.grant(f"rc-{index % 100}", f"attr-{index}")
    benchmark(policy_db.attributes_for, "rc-50")
