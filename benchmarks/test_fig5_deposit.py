"""FIG5 — the smart-device deposit operation (paper Fig. 5).

The figure is the prototype's deposit UI; the operation behind it is
"encrypt message under attribute, MAC, transmit, authenticate, store".
We benchmark that full path across message sizes (the UI's free-text
body can be anything) and the device-only share of it, which is the
paper's constrained-device cost.
"""

from __future__ import annotations

import pytest

SIZES = [64, 1024, 8192]


@pytest.fixture(scope="module")
def deposit_world(deployment):
    device = deployment.new_smart_device("fig5-meter")
    deployment.new_receiving_client("fig5-rc", "pw", attributes=["FIG5-ATTR"])
    channel = deployment.sd_channel("fig5-meter")
    return deployment, device, channel


@pytest.mark.benchmark(group="fig5-deposit")
@pytest.mark.parametrize("size", SIZES)
def test_fig5_full_deposit_path(benchmark, deposit_world, size):
    """Device + wire + SDA + store, by message size."""
    _deployment, device, channel = deposit_world
    message = bytes(i % 251 for i in range(size))
    benchmark(device.deposit, channel, "FIG5-ATTR", message)


@pytest.mark.benchmark(group="fig5-deposit")
@pytest.mark.parametrize("size", SIZES)
def test_fig5_device_side_only(benchmark, deposit_world, size):
    """Just the constrained device's work (no network, no MWS)."""
    _deployment, device, _channel = deposit_world
    message = bytes(i % 251 for i in range(size))
    benchmark(device.build_deposit, "FIG5-ATTR", message)


@pytest.mark.benchmark(group="fig5-deposit")
@pytest.mark.parametrize("cipher_name", ["DES", "3DES", "AES-128"])
def test_fig5_device_cipher_choice(benchmark, deployment, cipher_name):
    """Device cost by symmetric cipher (paper used DES)."""
    from repro.clients.smart_device import SmartDevice
    from repro.mathlib.rand import HmacDrbg

    shared = deployment.mws.register_device(f"fig5-{cipher_name}")
    device = SmartDevice(
        f"fig5-{cipher_name}",
        deployment.public_params,
        shared,
        clock=deployment.clock,
        rng=HmacDrbg(cipher_name.encode()),
        cipher_name=cipher_name,
    )
    benchmark(device.build_deposit, "FIG5-ATTR", b"x" * 1024)


@pytest.mark.benchmark(group="fig5-batching")
@pytest.mark.parametrize("batch_size", [1, 5, 20])
def test_fig5_batched_deposit(benchmark, deposit_world, batch_size):
    """Batched deposits amortise MAC + round-trip over N readings.

    Reported time is per batch; divide by the size for per-reading cost
    (the crypto per reading is constant, so savings are overhead-only).
    """
    deployment, device, _channel = deposit_world
    batch_channel = deployment.sd_batch_channel(device.device_id)
    items = [("FIG5-ATTR", b"r" * 64) for _ in range(batch_size)]

    def batched():
        response = device.deposit_batch(batch_channel, items)
        assert response.accepted

    benchmark(batched)
