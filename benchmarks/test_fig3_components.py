"""FIG3 — per-component micro-benchmarks (paper Fig. 3 architecture).

One benchmark per box in the architecture diagram: Smart Device (the
encrypt side), Smart Device Authenticator, Message Database, Message
Management System, Policy Database, Token Generator, User
Database/Gatekeeper, and the PKG.  Together these decompose the
end-to-end cost measured by FIG4.
"""

from __future__ import annotations

import itertools

import pytest

from repro.wire.messages import KeyRequest


@pytest.fixture(scope="module")
def components(deployment):
    device = deployment.new_smart_device("fig3-meter")
    client = deployment.new_receiving_client(
        "fig3-rc", "fig3-pw", attributes=["FIG3-ATTR"]
    )
    # Prime the warehouse so retrieval paths have data.
    channel = deployment.sd_channel("fig3-meter")
    for index in range(10):
        device.deposit(channel, "FIG3-ATTR", f"m-{index}".encode())
    return deployment, device, client


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_smart_device_encrypt(benchmark, components):
    """SD box: build one deposit (pairing + DES + HMAC)."""
    _dep, device, _client = components
    benchmark(device.build_deposit, "FIG3-ATTR", b"x" * 64)


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_sda_verify(benchmark, components):
    """SDA box: MAC verification + freshness checks.

    pedantic mode: each round verifies a *fresh* deposit, because the
    SDA's replay cache would reject a repeated one.
    """
    deployment, device, _client = components

    def make_request():
        return (device.build_deposit("FIG3-ATTR", b"x" * 64),), {}

    benchmark.pedantic(
        deployment.mws.sda.authenticate,
        setup=make_request,
        rounds=30,
    )


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_message_db_store(benchmark, components):
    """MD box: persist one accepted record."""
    deployment, _device, _client = components
    counter = itertools.count()

    def store():
        deployment.mws.message_db.store(
            "fig3-meter", "FIG3-STORE", b"n" * 16, b"ct" * 50, next(counter)
        )

    benchmark(store)


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_mms_retrieve(benchmark, components):
    """MMS box: policy resolution + attribute fetch + AID rewrite."""
    deployment, _device, _client = components
    benchmark(
        deployment.mws.mms.retrieve_for, "fig3-rc", deployment.clock.now_us()
    )


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_policy_db_lookup(benchmark, components):
    """PD box: grants lookup for one identity."""
    deployment, _device, _client = components
    benchmark(deployment.mws.policy_db.attributes_for, "fig3-rc")


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_token_generator(benchmark, components):
    """TG box: mint ticket + token (AES seals + RSA hybrid seal)."""
    deployment, _device, client = components
    benchmark(
        deployment.mws.token_generator.issue,
        "fig3-rc",
        client._rsa.public,
        {1: "FIG3-ATTR"},
    )


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_gatekeeper_auth(benchmark, components):
    """Gatekeeper + User DB box: open auth blob, check id/time/nonce.

    Fresh request per round (the nonce cache rejects replays).
    """
    deployment, _device, client = components

    def make_request():
        return (client.build_retrieve_request(),), {}

    benchmark.pedantic(
        deployment.mws.gatekeeper.authenticate,
        setup=make_request,
        rounds=30,
    )


@pytest.mark.benchmark(group="fig3-components")
def test_fig3_pkg_extraction(benchmark, components):
    """PKG box: resolve AID, extract sI (one point-mul + hash-to-point),
    seal under the session key — measured at the byte handler."""
    deployment, _device, client = components
    response = client.retrieve(deployment.rc_mws_channel("fig3-rc"))
    token = client.open_token(response.token)
    pkg_channel = deployment.rc_pkg_channel("fig3-rc")
    session_id = client.authenticate_to_pkg(pkg_channel, token)
    message = response.messages[0]
    counter = itertools.count()

    def extract():
        request = KeyRequest(
            session_id=session_id,
            attribute_id=message.attribute_id,
            nonce=next(counter).to_bytes(16, "big"),
        )
        return deployment.pkg.handler(b"\x02" + request.to_bytes())

    benchmark(extract)
