"""EXT-C — revocation cost (paper requirement iii; DESIGN.md ablation 2).

Measures (a) the revocation operation itself, (b) the steady-state cost
the per-message-nonce design pays for revocability — one PKG extraction
per message — against the static-key mode where one extraction serves
all messages but revocation cannot stop a key that already escaped.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_deployment
from repro.core import RevocationManager

MESSAGES = 10


def world(use_nonce: bool):
    deployment = fresh_deployment(
        seed=b"ext-c-nonce" if use_nonce else b"ext-c-static",
        use_nonce=use_nonce,
    )
    device = deployment.new_smart_device("extc-meter")
    client = deployment.new_receiving_client("extc-rc", "pw", attributes=["EXTC"])
    channel = deployment.sd_channel("extc-meter")
    for index in range(MESSAGES):
        device.deposit(channel, "EXTC", f"m-{index}".encode())
    return deployment, device, client


@pytest.mark.benchmark(group="ext-c-retrieval-mode")
@pytest.mark.parametrize("mode", ["nonce", "static"])
def test_ext_c_retrieval_cost_by_mode(benchmark, mode):
    """Retrieve+decrypt 10 messages: nonce mode pays ~10 extractions,
    static mode pays 1 (ablation 2's cost side)."""
    deployment, _device, client = world(use_nonce=(mode == "nonce"))

    def retrieve_all():
        client._key_cache.clear()
        return client.retrieve_and_decrypt(
            deployment.rc_mws_channel("extc-rc"),
            deployment.rc_pkg_channel("extc-rc"),
        )

    results = benchmark(retrieve_all)
    assert len(results) == MESSAGES
    deployment.close()


def test_ext_c_extraction_counts_by_mode():
    """The benefit side: the audit trail shows why static mode is cheap
    and weak — one identity covers everything."""
    for mode, expected in (("nonce", MESSAGES), ("static", 1)):
        deployment, _device, client = world(use_nonce=(mode == "nonce"))
        client.retrieve_and_decrypt(
            deployment.rc_mws_channel("extc-rc"),
            deployment.rc_pkg_channel("extc-rc"),
        )
        assert len(deployment.pkg.audit_log) == expected, mode
        deployment.close()


@pytest.mark.benchmark(group="ext-c-revocation-op")
def test_ext_c_revocation_operation(benchmark):
    """The revocation operation itself: O(1) policy work, no devices."""
    deployment, _device, _client = world(use_nonce=True)
    manager = RevocationManager(deployment)

    def revoke_and_reinstate():
        manager.revoke("extc-rc", "EXTC")
        manager.reinstate("extc-rc", "EXTC")

    benchmark(revoke_and_reinstate)
    deployment.close()


@pytest.mark.benchmark(group="ext-c-revocation-op")
def test_ext_c_survivor_cost_after_revocations(benchmark):
    """Other clients' retrieval cost is unchanged by 100 revocations of
    third parties (no CRL-style global state to consult)."""
    deployment, _device, client = world(use_nonce=True)
    manager = RevocationManager(deployment)
    for index in range(100):
        deployment.mws.register_rc(f"churn-{index}", "pw")
        deployment.mws.grant(f"churn-{index}", "EXTC")
        manager.revoke(f"churn-{index}", "EXTC")
    benchmark(client.retrieve, deployment.rc_mws_channel("extc-rc"))
    deployment.close()
