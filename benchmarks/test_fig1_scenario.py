"""FIG1 — the utility-company scenario (paper Fig. 1).

Regenerates the figure's content programmatically: three meter kinds,
three companies with the exact access grants from the figure, one
reporting round; asserts the resulting access matrix equals the
figure's, and benchmarks the full scenario round.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_deployment
from repro.sim.workload import MeterKind, SmartMeterFleet, WorkloadConfig

GRANTS = {
    "c-services": {MeterKind.ELECTRIC, MeterKind.WATER, MeterKind.GAS},
    "electric-and-gas": {MeterKind.ELECTRIC, MeterKind.GAS},
    "water-and-resources": {MeterKind.WATER},
}


def build_world():
    deployment = fresh_deployment(seed=b"fig1")
    fleet = SmartMeterFleet(WorkloadConfig(meters_per_kind=1))
    devices = {
        device_id: deployment.new_smart_device(device_id)
        for device_id in fleet.device_ids()
    }
    clients = {
        company: deployment.new_receiving_client(
            company,
            f"pw-{company}",
            attributes=[fleet.attribute_for(kind) for kind in kinds],
        )
        for company, kinds in GRANTS.items()
    }
    return deployment, fleet, devices, clients


def run_round(deployment, fleet, devices, clients):
    """One full Fig. 1 round: every meter deposits, every company reads."""
    for reading in fleet.round_of_readings():
        device = devices[reading.device_id]
        device.deposit(
            deployment.sd_channel(device.device_id),
            reading.attribute(),
            reading.payload(),
        )
    matrix = {}
    for company, client in clients.items():
        messages = client.retrieve_and_decrypt(
            deployment.rc_mws_channel(company),
            deployment.rc_pkg_channel(company),
        )
        kinds = set()
        for message in messages:
            kind_field = message.plaintext.split(b";")[1]
            kinds.add(MeterKind(kind_field.split(b"=")[1].decode()))
        matrix[company] = kinds
    return matrix


def test_fig1_access_matrix_matches_paper():
    """The figure's content: who reads which meter classes."""
    deployment, fleet, devices, clients = build_world()
    matrix = run_round(deployment, fleet, devices, clients)
    assert matrix == GRANTS
    print("\nFIG1 access matrix (reproduced):")
    for company, kinds in matrix.items():
        print(f"  {company:22} -> {sorted(k.value for k in kinds)}")
    deployment.close()


@pytest.mark.benchmark(group="fig1-scenario")
def test_fig1_scenario_round(benchmark):
    """Wall-clock of one complete Fig. 1 round (3 deposits + 3 retrievals).

    The warehouse is emptied after each round so every measured round
    does identical work.
    """
    deployment, fleet, devices, clients = build_world()

    def scenario_round():
        matrix = run_round(deployment, fleet, devices, clients)
        for record in list(deployment.mws.message_db.by_time_range(0, 2**63)):
            deployment.mws.message_db.delete(record.message_id)
        return matrix

    matrix = benchmark(scenario_round)
    assert matrix == GRANTS
    deployment.close()
