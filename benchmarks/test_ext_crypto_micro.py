"""EXT-D — cryptographic primitive micro-benchmarks (DESIGN.md
ablations 1, 4 and 5).

Series: Tate vs Weil pairing (paper §IV says Tate is faster — verify),
pairing cost by parameter size, scalar multiplication, hash-to-point,
BasicIdent vs FullIdent vs hybrid KEM, DES vs 3DES vs AES, and RSA.
"""

from __future__ import annotations

import pytest

from repro.ibe import BasicIdent, FullIdent, hybrid_encrypt, setup
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset, tate_pairing, weil_pairing
from repro.pairing.hashing import hash_to_point
from repro.pki.rsa import generate_rsa_keypair
from repro.symciph import new_cipher
from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme

PARAMS = get_preset("TEST80")
GENERATOR = PARAMS.generator
DISTORTED = PARAMS.distort(GENERATOR)
MASTER = setup(PARAMS, rng=HmacDrbg(b"ext-d"))
MESSAGE = b"m" * 64


@pytest.mark.benchmark(group="ext-d-pairing")
def test_ext_d_tate_pairing(benchmark):
    """One reduced Tate pairing (a single Miller loop + final exp)."""
    benchmark(tate_pairing, GENERATOR, DISTORTED, PARAMS.q, PARAMS.ext_curve)


@pytest.mark.benchmark(group="ext-d-pairing")
def test_ext_d_weil_pairing(benchmark):
    """One Weil pairing (two Miller loops) — expect ~2x Tate."""
    benchmark(weil_pairing, GENERATOR, DISTORTED, PARAMS.q, PARAMS.ext_curve)


@pytest.mark.benchmark(group="ext-d-pairing-size")
@pytest.mark.parametrize("preset", ["TOY64", "TEST80", "SMALL160", "MED256"])
def test_ext_d_pairing_by_parameter_size(benchmark, preset):
    """Pairing cost vs field size (pure-Python bigint scaling)."""
    params = get_preset(preset)
    distorted = params.distort(params.generator)
    benchmark(
        tate_pairing, params.generator, distorted, params.q, params.ext_curve
    )


@pytest.mark.benchmark(group="ext-d-group-ops")
def test_ext_d_scalar_multiplication(benchmark):
    scalar = PARAMS.q // 3
    benchmark(lambda: scalar * GENERATOR)


@pytest.mark.benchmark(group="ext-d-group-ops")
def test_ext_d_hash_to_point(benchmark):
    """H1 = MapToPoint incl. cofactor clearing."""
    benchmark(hash_to_point, PARAMS, b"ELECTRIC-GLENBROOK-SV-CA|nonce")


@pytest.mark.benchmark(group="ext-d-ibe-scheme")
def test_ext_d_basic_ident_encrypt(benchmark):
    scheme = BasicIdent(MASTER.public, rng=HmacDrbg(b"b"))
    benchmark(scheme.encrypt, b"attr", MESSAGE)


@pytest.mark.benchmark(group="ext-d-ibe-scheme")
def test_ext_d_full_ident_encrypt(benchmark):
    """FO transform adds one hash-to-scalar; decrypt adds a point-mul."""
    scheme = FullIdent(MASTER.public, rng=HmacDrbg(b"f"))
    benchmark(scheme.encrypt, b"attr", MESSAGE)


@pytest.mark.benchmark(group="ext-d-ibe-scheme")
def test_ext_d_hybrid_encrypt(benchmark):
    """The protocol's actual construction: KEM + DES container."""
    rng = HmacDrbg(b"h")
    benchmark(hybrid_encrypt, MASTER.public, b"attr", MESSAGE, "DES", rng)


@pytest.mark.benchmark(group="ext-d-ibe-scheme")
def test_ext_d_basic_ident_decrypt(benchmark):
    scheme = BasicIdent(MASTER.public, rng=HmacDrbg(b"b"))
    private_key = MASTER.extract(b"attr")
    ciphertext = scheme.encrypt(b"attr", MESSAGE)
    benchmark(scheme.decrypt, private_key, ciphertext)


@pytest.mark.benchmark(group="ext-d-ibe-scheme")
def test_ext_d_full_ident_decrypt(benchmark):
    scheme = FullIdent(MASTER.public, rng=HmacDrbg(b"f"))
    private_key = MASTER.extract(b"attr")
    ciphertext = scheme.encrypt(b"attr", MESSAGE)
    benchmark(scheme.decrypt, private_key, ciphertext)


@pytest.mark.benchmark(group="ext-d-extract")
def test_ext_d_key_extraction(benchmark):
    """PKG Extract: hash-to-point + one scalar multiplication."""
    benchmark(MASTER.extract, b"attr|nonce")


@pytest.mark.benchmark(group="ext-d-symmetric")
@pytest.mark.parametrize("cipher_name", ["DES", "3DES", "AES-128", "AES-256"])
def test_ext_d_block_cipher_raw(benchmark, cipher_name):
    """Raw single-block speed per cipher."""
    spec = CIPHER_REGISTRY[cipher_name]
    cipher = new_cipher(cipher_name, bytes(spec.key_size))
    block = bytes(spec.block_size)
    benchmark(cipher.encrypt_block, block)


@pytest.mark.benchmark(group="ext-d-symmetric")
@pytest.mark.parametrize("cipher_name", ["DES", "AES-128"])
def test_ext_d_scheme_seal_1kib(benchmark, cipher_name):
    """Sealed-container cost for a 1 KiB message (CBC + HMAC)."""
    spec = CIPHER_REGISTRY[cipher_name]
    scheme = SymmetricScheme(
        cipher_name, bytes(spec.key_size), mac=True, rng=HmacDrbg(b"s")
    )
    benchmark(scheme.seal, b"x" * 1024)


RSA_KEYPAIR = generate_rsa_keypair(768, rng=HmacDrbg(b"ext-d-rsa"))


@pytest.mark.benchmark(group="ext-d-rsa")
def test_ext_d_rsa_encrypt(benchmark):
    benchmark(RSA_KEYPAIR.public.encrypt, b"k" * 16, HmacDrbg(b"r"))


@pytest.mark.benchmark(group="ext-d-rsa")
def test_ext_d_rsa_decrypt(benchmark):
    ciphertext = RSA_KEYPAIR.public.encrypt(b"k" * 16, HmacDrbg(b"r"))
    benchmark(RSA_KEYPAIR.private.decrypt, ciphertext)


# ---------------------------------------------------------------------------
# EXT-D addendum: fixed-base precomputation ablation
# ---------------------------------------------------------------------------

from repro.pairing.precompute import FixedBaseGt, FixedBasePoint  # noqa: E402

_FIXED_POINT = FixedBasePoint(GENERATOR, PARAMS.q)
_GT_BASE = PARAMS.pair(GENERATOR, GENERATOR)
_FIXED_GT = FixedBaseGt(_GT_BASE, PARAMS.q)
_SCALAR = PARAMS.q * 2 // 3


@pytest.mark.benchmark(group="ext-d-precompute")
def test_ext_d_scalar_mult_generic(benchmark):
    """Baseline double-and-add on the generator."""
    benchmark(lambda: _SCALAR * GENERATOR)


@pytest.mark.benchmark(group="ext-d-precompute")
def test_ext_d_scalar_mult_fixed_base(benchmark):
    """Windowed fixed-base table: the device's r*P per deposit."""
    result = benchmark(_FIXED_POINT, _SCALAR)
    assert result == _SCALAR * GENERATOR


@pytest.mark.benchmark(group="ext-d-precompute")
def test_ext_d_gt_pow_generic(benchmark):
    benchmark(lambda: _GT_BASE ** _SCALAR)


@pytest.mark.benchmark(group="ext-d-precompute")
def test_ext_d_gt_pow_fixed_base(benchmark):
    result = benchmark(_FIXED_GT, _SCALAR)
    assert result == _GT_BASE ** _SCALAR
