"""EXT-E — storage-backend ablation (DESIGN.md ablation 3).

The paper's prototype used flat files; its future work asked for a real
database layer.  Same MessageDatabase workload over all three backends:
in-memory (upper bound), flat-file (the prototype), log-structured (the
future-work engine), plus the engine's recovery and compaction costs.
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.storage.engine import FlatFileStore, LogStructuredStore, MemoryStore
from repro.storage.message_db import MessageDatabase

BACKENDS = ["memory", "flatfile", "log"]


def make_store(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return MemoryStore()
    if kind == "flatfile":
        return FlatFileStore(str(tmp_path / f"flat-{tag}"))
    return LogStructuredStore(str(tmp_path / f"log-{tag}.db"))


@pytest.mark.benchmark(group="ext-e-store")
@pytest.mark.parametrize("backend", BACKENDS)
def test_ext_e_message_store_cost(benchmark, tmp_path, backend):
    """One warehouse insert (the hot path of every deposit)."""
    database = MessageDatabase(make_store(backend, tmp_path, "store"))
    counter = itertools.count()

    def store():
        database.store("meter", "ATTR", b"n" * 16, b"ct" * 64, next(counter))

    benchmark(store)
    database.close()


@pytest.mark.benchmark(group="ext-e-fetch")
@pytest.mark.parametrize("backend", BACKENDS)
def test_ext_e_attribute_fetch_cost(benchmark, tmp_path, backend):
    """Fetch 20 records by attribute out of a 500-record warehouse."""
    database = MessageDatabase(make_store(backend, tmp_path, "fetch"))
    for index in range(500):
        attribute = "MINE" if index % 25 == 0 else f"OTHER-{index % 10}"
        database.store("meter", attribute, b"n", b"ct" * 64, index)
    result = benchmark(database.by_attribute, "MINE")
    assert len(result) == 20
    database.close()


@pytest.mark.benchmark(group="ext-e-recovery")
@pytest.mark.parametrize("record_count", [100, 1000])
def test_ext_e_log_recovery_scan(benchmark, tmp_path, record_count):
    """Restart cost: the single recovery scan that rebuilds the index."""
    path = str(tmp_path / f"recover-{record_count}.db")
    store = LogStructuredStore(path)
    for index in range(record_count):
        store.put(index.to_bytes(8, "big"), b"v" * 128)
    store.close()

    def recover():
        recovered = LogStructuredStore(path)
        count = len(recovered)
        recovered.close()
        return count

    assert benchmark(recover) == record_count


@pytest.mark.benchmark(group="ext-e-recovery")
def test_ext_e_log_compaction(benchmark, tmp_path):
    """Compaction of a churn-heavy log (90% dead records)."""
    counter = itertools.count()

    def setup():
        path = str(tmp_path / f"compact-{next(counter)}.db")
        store = LogStructuredStore(path)
        for index in range(500):
            store.put((index % 50).to_bytes(8, "big"), b"v" * 100)
        return (store,), {}

    def compact(store):
        store.compact()
        store.close()

    benchmark.pedantic(compact, setup=setup, rounds=5)


@pytest.mark.benchmark(group="ext-e-durability")
def test_ext_e_sync_write_cost(benchmark, tmp_path):
    """fsync-per-write durability premium over buffered appends."""
    store = LogStructuredStore(str(tmp_path / "sync.db"), sync=True)
    counter = itertools.count()

    def durable_put():
        store.put(next(counter).to_bytes(8, "big"), b"v" * 128)

    benchmark(durable_put)
    store.close()


@pytest.mark.benchmark(group="ext-e-durability")
def test_ext_e_buffered_write_cost(benchmark, tmp_path):
    store = LogStructuredStore(str(tmp_path / "buffered.db"), sync=False)
    counter = itertools.count()

    def buffered_put():
        store.put(next(counter).to_bytes(8, "big"), b"v" * 128)

    benchmark(buffered_put)
    store.close()


def test_ext_e_space_amplification(tmp_path):
    """Structural comparison: flat-file stores one file per record; the
    log reclaims shadowed space only after compaction."""
    log_store = LogStructuredStore(str(tmp_path / "amp.db"))
    for index in range(100):
        log_store.put(b"same-key", b"v" * 100)
    assert log_store.file_bytes() > 100 * 100  # 100 shadowed versions
    log_store.compact()
    assert log_store.file_bytes() < 2 * 113  # one live frame
    log_store.close()

    flat_directory = tmp_path / "amp-flat"
    flat_store = FlatFileStore(str(flat_directory))
    for index in range(100):
        flat_store.put(b"same-key", b"v" * 100)
    assert len(os.listdir(flat_directory)) == 1  # overwrite in place
