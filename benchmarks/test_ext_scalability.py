"""EXT-B — scalability (paper requirement iv).

Sweeps warehouse size, per-RC message count and fleet size, showing
that deposit cost is O(1) in warehouse size and retrieval cost scales
with the RC's own message count (the attribute index), not the total.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fresh_deployment

WAREHOUSE_SIZES = [10, 100, 1000]
MESSAGE_COUNTS = [1, 10, 50]


def populated_deployment(total_messages: int, foreign_ratio: int = 1):
    """A deployment whose warehouse holds ``total_messages`` records,
    all under attributes the benchmark RC does NOT hold."""
    deployment = fresh_deployment(seed=b"ext-b-%d" % total_messages)
    device = deployment.new_smart_device("extb-meter")
    message_db = deployment.mws.message_db
    # Populate directly through the storage API: this benchmark sweeps
    # data volume, not crypto, and direct loading keeps setup O(n) cheap.
    for index in range(total_messages):
        message_db.store(
            "extb-meter", f"FOREIGN-{index % 50}", b"n" * 16, b"ct" * 64, index
        )
    return deployment, device


@pytest.mark.benchmark(group="ext-b-deposit-vs-warehouse")
@pytest.mark.parametrize("warehouse_size", WAREHOUSE_SIZES)
def test_ext_b_deposit_cost_flat_in_warehouse_size(benchmark, warehouse_size):
    """Deposit latency must not grow with stored-message count."""
    deployment, device = populated_deployment(warehouse_size)
    channel = deployment.sd_channel("extb-meter")
    benchmark(device.deposit, channel, "EXTB-ATTR", b"reading" * 8)
    deployment.close()


@pytest.mark.benchmark(group="ext-b-retrieve-vs-own-messages")
@pytest.mark.parametrize("message_count", MESSAGE_COUNTS)
def test_ext_b_retrieve_scales_with_own_messages(benchmark, message_count):
    """MWS-side retrieval work grows with the RC's messages only."""
    deployment, device = populated_deployment(1000)
    client = deployment.new_receiving_client(
        "extb-rc", "pw", attributes=["EXTB-MINE"]
    )
    channel = deployment.sd_channel("extb-meter")
    for index in range(message_count):
        device.deposit(channel, "EXTB-MINE", f"mine-{index}".encode())
    benchmark(client.retrieve, deployment.rc_mws_channel("extb-rc"))
    deployment.close()


@pytest.mark.benchmark(group="ext-b-retrieve-vs-own-messages")
@pytest.mark.parametrize("message_count", [1, 10])
def test_ext_b_full_decrypt_scales_with_own_messages(benchmark, message_count):
    """End-to-end retrieval+decryption: linear in own messages (one PKG
    extraction + one pairing per message in nonce mode)."""
    deployment, device = populated_deployment(100)
    client = deployment.new_receiving_client(
        "extb-rc", "pw", attributes=["EXTB-MINE"]
    )
    channel = deployment.sd_channel("extb-meter")
    for index in range(message_count):
        device.deposit(channel, "EXTB-MINE", f"mine-{index}".encode())

    def retrieve_all():
        # Fresh client cache per round would be ideal; clearing the cache
        # keeps each round's PKG work identical.
        client._key_cache.clear()
        return client.retrieve_and_decrypt(
            deployment.rc_mws_channel("extb-rc"),
            deployment.rc_pkg_channel("extb-rc"),
        )

    results = benchmark(retrieve_all)
    assert len(results) == message_count
    deployment.close()


@pytest.mark.benchmark(group="ext-b-fleet")
@pytest.mark.parametrize("fleet_size", [5, 25])
def test_ext_b_deposit_round_scales_linearly_with_fleet(benchmark, fleet_size):
    """A reporting round costs fleet_size * O(1)."""
    deployment = fresh_deployment(seed=b"ext-b-fleet-%d" % fleet_size)
    devices = [
        deployment.new_smart_device(f"fleet-{index}") for index in range(fleet_size)
    ]
    channels = {
        device.device_id: deployment.sd_channel(device.device_id)
        for device in devices
    }

    def reporting_round():
        for device in devices:
            device.deposit(
                channels[device.device_id], "FLEET-ATTR", b"reading" * 4
            )

    benchmark(reporting_round)
    deployment.close()


@pytest.mark.benchmark(group="ext-b-attributes")
@pytest.mark.parametrize("attribute_count", [1, 10, 50])
def test_ext_b_ticket_size_vs_attribute_count(benchmark, attribute_count):
    """Token issuance with many grants: the ticket grows, the RSA hybrid
    seal stays one operation."""
    deployment = fresh_deployment(seed=b"ext-b-attrs")
    client = deployment.new_receiving_client(
        f"extb-rc-{attribute_count}",
        "pw",
        attributes=[f"ATTR-{index}" for index in range(attribute_count)],
    )
    attribute_map = deployment.mws.policy_db.attributes_for(
        f"extb-rc-{attribute_count}"
    )
    benchmark(
        deployment.mws.token_generator.issue,
        f"extb-rc-{attribute_count}",
        client._rsa.public,
        attribute_map,
    )
    deployment.close()
