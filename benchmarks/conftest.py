"""Shared fixtures for the benchmark suite.

Everything here is deterministic (seeded DRBGs) and session-scoped where
the state is read-only, so `pytest benchmarks/ --benchmark-only` gives
stable, comparable numbers run to run.  The parameter preset is TEST80
— large enough that ratios (pairing vs symmetric, Tate vs Weil, IBE vs
PKI) are meaningful, small enough that pure-Python math keeps each
benchmark in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.mws.service import MwsConfig


BENCH_PRESET = "TEST80"
BENCH_RSA_BITS = 768


def fresh_deployment(**overrides) -> Deployment:
    config = DeploymentConfig(
        preset=overrides.pop("preset", BENCH_PRESET),
        rsa_bits=overrides.pop("rsa_bits", BENCH_RSA_BITS),
        seed=overrides.pop("seed", b"bench-deployment"),
        mws=overrides.pop("mws", MwsConfig()),
        **overrides,
    )
    return Deployment.build(config)


@pytest.fixture(scope="module")
def deployment():
    """A module-scoped deployment; benchmarks must not mutate policy."""
    built = fresh_deployment()
    yield built
    built.close()


@pytest.fixture(scope="module")
def loaded_world(deployment):
    """Deployment + device + RC with 10 deposited messages."""
    device = deployment.new_smart_device("bench-meter")
    client = deployment.new_receiving_client(
        "bench-rc", "bench-pw", attributes=["BENCH-ATTR"]
    )
    channel = deployment.sd_channel("bench-meter")
    for index in range(10):
        device.deposit(channel, "BENCH-ATTR", f"reading-{index}".encode())
    return deployment, device, client
