"""Setup shim so legacy ``pip install -e .`` works without the ``wheel``
package (offline environments with setuptools < 70).  All real metadata
lives in ``pyproject.toml``."""

from setuptools import setup

setup()
