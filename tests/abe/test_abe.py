"""Access trees, Lagrange interpolation and the KP-ABE scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abe import KpAbeAuthority, leaf, threshold
from repro.abe.access_tree import lagrange_coefficient
from repro.errors import AccessDeniedError, ParameterError
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset

PARAMS = get_preset("TOY64")
Q = PARAMS.q


@pytest.fixture(scope="module")
def authority():
    return KpAbeAuthority(
        PARAMS,
        ["ELECTRIC", "GAS", "WATER", "REGION-SV", "REGION-NY"],
        rng=HmacDrbg(b"abe-authority"),
    )


class TestLagrange:
    def test_interpolation_recovers_secret(self):
        """Shamir reconstruction: shares of a random polynomial at x=0."""
        rng = HmacDrbg(b"shamir")
        secret = rng.randbelow(Q)
        coefficients = [secret] + [rng.randbelow(Q) for _ in range(2)]  # degree 2

        def poly(x):
            return sum(c * pow(x, i, Q) for i, c in enumerate(coefficients)) % Q

        index_set = [1, 3, 5]
        recovered = (
            sum(
                poly(i) * lagrange_coefficient(i, index_set, 0, Q)
                for i in index_set
            )
            % Q
        )
        assert recovered == secret

    def test_index_must_be_in_set(self):
        with pytest.raises(ParameterError):
            lagrange_coefficient(2, [1, 3], 0, Q)

    def test_basis_property(self):
        """Δ_i(j) is 1 at i and 0 at other interpolation points."""
        index_set = [1, 2, 4]
        for i in index_set:
            for j in index_set:
                value = lagrange_coefficient(i, index_set, j, Q)
                assert value == (1 if i == j else 0)


class TestAccessTree:
    def test_leaf_satisfaction(self):
        assert leaf("A").satisfied_by({"A", "B"})
        assert not leaf("A").satisfied_by({"B"})

    def test_and_gate(self):
        tree = threshold(2, leaf("A"), leaf("B"))
        assert tree.satisfied_by({"A", "B"})
        assert not tree.satisfied_by({"A"})

    def test_or_gate(self):
        tree = threshold(1, leaf("A"), leaf("B"))
        assert tree.satisfied_by({"A"})
        assert tree.satisfied_by({"B"})
        assert not tree.satisfied_by({"C"})

    def test_nested_threshold(self):
        # 2-of-(A, B, 2-of-(C, D))
        tree = threshold(2, leaf("A"), leaf("B"), threshold(2, leaf("C"), leaf("D")))
        assert tree.satisfied_by({"A", "B"})
        assert tree.satisfied_by({"A", "C", "D"})
        assert not tree.satisfied_by({"A", "C"})

    def test_leaves_ordering(self):
        tree = threshold(1, leaf("X"), threshold(2, leaf("Y"), leaf("Z")))
        assert [node.attribute for node in tree.leaves()] == ["X", "Y", "Z"]
        assert tree.attributes() == {"X", "Y", "Z"}

    def test_invalid_structures(self):
        with pytest.raises(ParameterError):
            threshold(3, leaf("A"), leaf("B"))  # k > n
        with pytest.raises(ParameterError):
            threshold(0, leaf("A"))
        with pytest.raises(ParameterError):
            threshold(1)  # no children

    def test_share_distribution_reconstructs(self):
        """Shares at an AND gate must Lagrange-combine back to the secret."""
        rng = HmacDrbg(b"shares")
        tree = threshold(2, leaf("A"), leaf("B"))
        secret = 123456789 % Q
        shares = tree.distribute_shares(secret, Q, rng)
        values = [shares[id(node)] for node in tree.leaves()]
        index_set = [1, 2]
        recovered = (
            sum(
                v * lagrange_coefficient(i, index_set, 0, Q)
                for i, v in zip(index_set, values)
            )
            % Q
        )
        assert recovered == secret

    def test_or_gate_shares_equal_secret(self):
        rng = HmacDrbg(b"or")
        tree = threshold(1, leaf("A"), leaf("B"))
        shares = tree.distribute_shares(42, Q, rng)
        assert all(share == 42 for share in shares.values())


class TestKpAbe:
    def test_simple_leaf_policy(self, authority):
        key = authority.keygen(leaf("ELECTRIC"))
        ciphertext = authority.encrypt(
            {"ELECTRIC"}, b"reading", rng=HmacDrbg(b"e0")
        )
        assert authority.decrypt(key, ciphertext) == b"reading"

    def test_and_policy(self, authority):
        key = authority.keygen(threshold(2, leaf("ELECTRIC"), leaf("REGION-SV")))
        good = authority.encrypt(
            {"ELECTRIC", "REGION-SV"}, b"sv electric", rng=HmacDrbg(b"e1")
        )
        assert authority.decrypt(key, good) == b"sv electric"
        bad = authority.encrypt(
            {"ELECTRIC", "REGION-NY"}, b"ny electric", rng=HmacDrbg(b"e2")
        )
        with pytest.raises(AccessDeniedError):
            authority.decrypt(key, bad)

    def test_or_policy(self, authority):
        key = authority.keygen(threshold(1, leaf("ELECTRIC"), leaf("GAS")))
        for label, body in ((("ELECTRIC",), b"e"), (("GAS",), b"g")):
            ciphertext = authority.encrypt(set(label), body, rng=HmacDrbg(body))
            assert authority.decrypt(key, ciphertext) == body

    def test_2_of_3_policy(self, authority):
        key = authority.keygen(
            threshold(2, leaf("ELECTRIC"), leaf("GAS"), leaf("WATER"))
        )
        ciphertext = authority.encrypt(
            {"GAS", "WATER"}, b"two of three", rng=HmacDrbg(b"e3")
        )
        assert authority.decrypt(key, ciphertext) == b"two of three"
        single = authority.encrypt({"GAS"}, b"just one", rng=HmacDrbg(b"e4"))
        with pytest.raises(AccessDeniedError):
            authority.decrypt(key, single)

    def test_utility_scenario_policy(self, authority):
        """The paper's C-Services as one ABE key instead of three grants."""
        c_services = authority.keygen(
            threshold(
                2,
                threshold(1, leaf("ELECTRIC"), leaf("GAS"), leaf("WATER")),
                leaf("REGION-SV"),
            )
        )
        for kind in ("ELECTRIC", "GAS", "WATER"):
            ciphertext = authority.encrypt(
                {kind, "REGION-SV"}, kind.encode(), rng=HmacDrbg(kind.encode())
            )
            assert authority.decrypt(c_services, ciphertext) == kind.encode()

    def test_unknown_attribute_in_tree_rejected(self, authority):
        with pytest.raises(ParameterError):
            authority.keygen(leaf("SOLAR"))

    def test_unknown_label_rejected(self, authority):
        with pytest.raises(ParameterError):
            authority.encrypt({"SOLAR"}, b"x")

    def test_empty_label_set_rejected(self, authority):
        with pytest.raises(ParameterError):
            authority.encrypt(set(), b"x")

    def test_universe_validation(self):
        with pytest.raises(ParameterError):
            KpAbeAuthority(PARAMS, [])
        with pytest.raises(ParameterError):
            KpAbeAuthority(PARAMS, ["A", "A"])

    def test_two_keys_cannot_collude(self, authority):
        """Separate keys for ELECTRIC and REGION-SV must not combine to
        satisfy an AND — shares are blinded per key."""
        electric_key = authority.keygen(
            threshold(2, leaf("ELECTRIC"), leaf("REGION-SV"))
        )
        ciphertext = authority.encrypt(
            {"ELECTRIC", "REGION-NY"}, b"ny data", rng=HmacDrbg(b"nc")
        )
        # electric_key requires REGION-SV which the ciphertext lacks.
        with pytest.raises(AccessDeniedError):
            authority.decrypt(electric_key, ciphertext)

    def test_tampered_body_rejected(self, authority):
        key = authority.keygen(leaf("WATER"))
        ciphertext = authority.encrypt({"WATER"}, b"secret", rng=HmacDrbg(b"t"))
        mutated = bytearray(ciphertext.sealed)
        mutated[-1] ^= 1
        ciphertext.sealed = bytes(mutated)
        with pytest.raises(Exception):
            authority.decrypt(key, ciphertext)
