"""Cross-cutting property tests that did not fit a single subsystem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset
from repro.storage.engine import MemoryStore
from repro.wire.encoding import Reader, Writer

PARAMS = get_preset("TOY64")


class TestStoreModelWithDeletes:
    """The storage contract under interleaved puts and deletes."""

    operations = st.lists(
        st.one_of(
            st.tuples(
                st.just("put"),
                st.binary(min_size=1, max_size=4),
                st.binary(max_size=16),
            ),
            st.tuples(st.just("del"), st.binary(min_size=1, max_size=4)),
        ),
        max_size=40,
    )

    @given(operations=operations)
    @settings(max_examples=60)
    def test_memory_store_matches_dict(self, operations):
        store = MemoryStore()
        model = {}
        for operation in operations:
            if operation[0] == "put":
                _, key, value = operation
                store.put(key, value)
                model[key] = value
            else:
                _, key = operation
                if key in model:
                    store.delete(key)
                    del model[key]
                else:
                    with pytest.raises(KeyNotFoundError):
                        store.delete(key)
        assert dict(store.items()) == model


class TestCodecSequenceModel:
    """Arbitrary field sequences written then read back must round-trip."""

    field_values = st.lists(
        st.one_of(
            st.integers(0, 255),           # u8
            st.booleans(),                 # bool
            st.binary(max_size=40),        # blob
            st.text(max_size=20),          # text
            st.integers(0, 2**64 - 1),     # u64 (distinguished by size)
        ),
        max_size=15,
    )

    @given(values=field_values)
    @settings(max_examples=80)
    def test_heterogeneous_sequence_roundtrip(self, values):
        writer = Writer()
        plan = []
        for value in values:
            if isinstance(value, bool):
                writer.bool(value)
                plan.append("bool")
            elif isinstance(value, int) and value <= 255:
                writer.u8(value)
                plan.append("u8")
            elif isinstance(value, int):
                writer.u64(value)
                plan.append("u64")
            elif isinstance(value, bytes):
                writer.blob(value)
                plan.append("blob")
            else:
                writer.text(value)
                plan.append("text")
        reader = Reader(writer.getvalue())
        for kind, expected in zip(plan, values):
            assert getattr(reader, kind)() == expected
        reader.finish()


class TestGtSubgroup:
    """Every pairing output lies in the order-q subgroup of F_p^2*."""

    @given(a=st.integers(1, PARAMS.q - 1), b=st.integers(1, PARAMS.q - 1))
    @settings(max_examples=25, deadline=None)
    def test_pair_output_order_divides_q(self, a, b):
        generator = PARAMS.generator
        value = PARAMS.pair(a * generator, b * generator)
        assert value ** PARAMS.q == PARAMS.ext_curve.field.one()
        assert not value.is_zero()

    @given(scalar=st.integers(1, PARAMS.q - 1))
    @settings(max_examples=25, deadline=None)
    def test_hash_points_pair_into_subgroup(self, scalar):
        from repro.pairing.hashing import hash_to_point

        point = hash_to_point(PARAMS, scalar.to_bytes(8, "big"))
        value = PARAMS.pair(point, PARAMS.generator)
        assert value ** PARAMS.q == PARAMS.ext_curve.field.one()


class TestDeploymentLatencyModel:
    def test_network_latency_advances_sim_clock(self):
        from tests.conftest import build_deployment

        deployment = build_deployment(latency_us=1000, seed=b"latency-test")
        device = deployment.new_smart_device("meter")
        before = deployment.clock.now_us()
        device.deposit(deployment.sd_channel("meter"), "A", b"m")
        after = deployment.clock.now_us()
        assert after - before >= 1000  # at least one hop of latency
        deployment.close()

    def test_message_and_byte_accounting(self):
        from tests.conftest import build_deployment

        deployment = build_deployment(seed=b"accounting-test")
        device = deployment.new_smart_device("meter")
        device.deposit(deployment.sd_channel("meter"), "A", b"m")
        assert deployment.network.messages_sent == 1
        assert deployment.network.bytes_sent > 100  # a real ciphertext went by
        stats = deployment.network.endpoint_stats()["mws-sd"]
        assert stats[0] == 1
        deployment.close()


class TestHybridCiphertextSizeModel:
    """Ciphertext size = fixed KEM overhead + padded symmetric body."""

    @given(length=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_size_is_affine_in_message_length(self, length):
        from repro.ibe import hybrid_encrypt, setup

        master = setup(PARAMS, rng=HmacDrbg(b"size"))
        ciphertext = hybrid_encrypt(
            master.public, b"attr", b"x" * length, rng=HmacDrbg(b"r")
        )
        encoded = len(ciphertext.to_bytes())
        # DES blocks: body = IV(8) + ceil((len+1)/8)*8 + tag(32).
        expected_body = 8 + ((length // 8) + 1) * 8 + 32
        overhead = encoded - expected_body
        # Fixed overhead: rP point + cipher tag + framing. Must not vary.
        assert 0 < overhead < 100
        reference = hybrid_encrypt(
            master.public, b"attr", b"", rng=HmacDrbg(b"r2")
        )
        reference_overhead = len(reference.to_bytes()) - (8 + 8 + 32)
        assert overhead == reference_overhead
