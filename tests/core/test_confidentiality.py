"""Requirement i: the MWS stores, routes and authorises — but cannot read.

These tests act as the adversary: they give the "attacker" everything
the MWS (or a curious RC) legitimately holds and verify the plaintext
stays out of reach.
"""

import pytest

from repro.errors import DecryptionError
from repro.ibe.kem import HybridCiphertext, hybrid_decrypt
from repro.pairing.hashing import hash_to_point
from repro.core.conventions import identity_string


MARKER = b"CONFIDENTIAL-METER-READING-93251"


@pytest.fixture()
def deposited(deployment):
    device = deployment.new_smart_device("meter")
    client = deployment.new_receiving_client("rc", "pw", attributes=["ATTR-X"])
    device.deposit(deployment.sd_channel("meter"), "ATTR-X", MARKER)
    return deployment, device, client


class TestMwsCannotRead:
    def test_stored_bytes_do_not_contain_plaintext(self, deposited):
        deployment, _device, _client = deposited
        record = deployment.mws.message_db.fetch(1)
        assert MARKER not in record.ciphertext
        assert MARKER not in record.to_bytes()

    def test_mws_view_lacks_decryption_capability(self, deposited):
        """Replaying the MWS's knowledge (attribute string, nonce, rP,
        ciphertext, public params) without the master secret fails."""
        deployment, _device, _client = deposited
        record = deployment.mws.message_db.fetch(1)
        public = deployment.public_params
        ciphertext = HybridCiphertext.from_bytes(record.ciphertext, public.params)
        identity = identity_string(record.attribute, record.nonce)
        # The best point the MWS can compute is H1(A||nonce) itself —
        # without s it cannot form s*H1(A||nonce).
        unprivileged_point = hash_to_point(public.params, identity)
        with pytest.raises(DecryptionError):
            hybrid_decrypt(public, unprivileged_point, ciphertext)

    def test_mws_guessing_with_p_pub_fails(self, deposited):
        deployment, _device, _client = deposited
        record = deployment.mws.message_db.fetch(1)
        public = deployment.public_params
        ciphertext = HybridCiphertext.from_bytes(record.ciphertext, public.params)
        with pytest.raises(DecryptionError):
            hybrid_decrypt(public, public.p_pub, ciphertext)

    def test_correct_key_does_decrypt(self, deposited):
        """Sanity: the failure above is about the key, not the data."""
        deployment, _device, _client = deposited
        record = deployment.mws.message_db.fetch(1)
        public = deployment.public_params
        ciphertext = HybridCiphertext.from_bytes(record.ciphertext, public.params)
        identity = identity_string(record.attribute, record.nonce)
        private_point = deployment.master.extract(identity).point
        assert hybrid_decrypt(public, private_point, ciphertext) == MARKER


class TestKeySeparation:
    def test_key_for_other_nonce_fails(self, deposited):
        """A key extracted for the same attribute but another message's
        nonce must not decrypt this message — per-message isolation."""
        deployment, _device, _client = deposited
        record = deployment.mws.message_db.fetch(1)
        public = deployment.public_params
        ciphertext = HybridCiphertext.from_bytes(record.ciphertext, public.params)
        other_identity = identity_string(record.attribute, b"\x00" * 16)
        other_point = deployment.master.extract(other_identity).point
        with pytest.raises(DecryptionError):
            hybrid_decrypt(public, other_point, ciphertext)

    def test_key_for_other_attribute_fails(self, deposited):
        deployment, _device, _client = deposited
        record = deployment.mws.message_db.fetch(1)
        public = deployment.public_params
        ciphertext = HybridCiphertext.from_bytes(record.ciphertext, public.params)
        wrong_identity = identity_string("ATTR-Y", record.nonce)
        wrong_point = deployment.master.extract(wrong_identity).point
        with pytest.raises(DecryptionError):
            hybrid_decrypt(public, wrong_point, ciphertext)


class TestRcAttributeHiding:
    def test_rc_only_sees_attribute_ids(self, deposited):
        """§V.A: 'The attribute is not revealed to the RC'."""
        deployment, _device, client = deposited
        response = client.retrieve(deployment.rc_mws_channel("rc"))
        wire_bytes = response.to_bytes()
        assert b"ATTR-X" not in wire_bytes
        token = client.open_token(response.token)
        assert b"ATTR-X" not in token.sealed_ticket  # sealed for the PKG
        assert all(m.attribute_id > 0 for m in response.messages)

    def test_pkg_key_response_reveals_no_attribute(self, deposited):
        deployment, _device, client = deposited
        response = client.retrieve(deployment.rc_mws_channel("rc"))
        token = client.open_token(response.token)
        pkg_channel = deployment.rc_pkg_channel("rc")
        session_id = client.authenticate_to_pkg(pkg_channel, token)
        message = response.messages[0]
        # Capture raw PKG traffic via an interceptor on a fresh fetch.
        captured = []
        deployment.network.add_interceptor(
            lambda s, d, p: (captured.append(p), p)[1]
        )
        client.fetch_key(
            pkg_channel, session_id, token.session_key,
            message.attribute_id, message.nonce,
        )
        assert captured
        assert all(b"ATTR-X" not in payload for payload in captured)


class TestTranscriptPrivacy:
    def test_plaintext_never_crosses_the_wire(self, deployment):
        """Sniff every network message of a full run: the plaintext must
        appear in none of them."""
        sniffed = []
        deployment.network.add_interceptor(
            lambda s, d, p: (sniffed.append(p), p)[1]
        )
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", MARKER)
        results = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        assert results[0].plaintext == MARKER  # the RC got it...
        assert all(MARKER not in payload for payload in sniffed)  # ...privately
