"""Requirements iii (revocation) and v (dynamic recipients)."""

import pytest

from repro.core import RevocationManager
from repro.errors import ProtocolError, UnknownIdentityError
from tests.conftest import build_deployment


def deposit(deployment, device, attribute, message):
    return device.deposit(deployment.sd_channel(device.device_id), attribute, message)


def retrieve(deployment, client):
    return client.retrieve_and_decrypt(
        deployment.rc_mws_channel(client.rc_id),
        deployment.rc_pkg_channel(client.rc_id),
    )


class TestRevocation:
    def test_revoked_rc_loses_attribute(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client(
            "rc", "pw", attributes=["WATER-X", "GAS-X"]
        )
        deposit(deployment, device, "WATER-X", b"water-1")
        deposit(deployment, device, "GAS-X", b"gas-1")
        manager = RevocationManager(deployment)
        manager.revoke("rc", "WATER-X")
        deposit(deployment, device, "WATER-X", b"water-2")
        messages = retrieve(deployment, client)
        assert {m.plaintext for m in messages} == {b"gas-1"}
        assert len(manager.events) == 1

    def test_fully_revoked_rc_rejected(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m")
        manager = RevocationManager(deployment)
        events = manager.revoke_all("rc")
        assert len(events) == 1
        with pytest.raises((ProtocolError, UnknownIdentityError)):
            retrieve(deployment, client)

    def test_no_device_interaction_needed(self, deployment):
        """The paper's headline property: revocation touches only the
        policy DB; the device keeps depositing unchanged and other RCs
        keep reading."""
        device = deployment.new_smart_device("meter")
        victim = deployment.new_receiving_client("victim", "pw1", attributes=["A"])
        survivor = deployment.new_receiving_client("survivor", "pw2", attributes=["A"])
        deposit(deployment, device, "A", b"before")
        RevocationManager(deployment).revoke("victim", "A")
        deposit(deployment, device, "A", b"after")  # device unchanged
        messages = retrieve(deployment, survivor)
        assert {m.plaintext for m in messages} == {b"before", b"after"}

    def test_exposure_frozen_at_revocation(self, deployment):
        """After revocation the RC can decrypt exactly the messages it
        already extracted keys for — nothing more, ever."""
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"seen-before-revocation")
        retrieve(deployment, client)  # extracts one key
        manager = RevocationManager(deployment)
        exposure_before = manager.effective_exposure("rc")
        manager.revoke("rc", "A")
        deposit(deployment, device, "A", b"never-seen")
        with pytest.raises((ProtocolError, UnknownIdentityError)):
            retrieve(deployment, client)
        assert manager.effective_exposure("rc") == exposure_before
        assert len(exposure_before) == 1

    def test_reinstate_issues_fresh_aid(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        original_aid = deployment.mws.policy_db.attributes_for("rc")
        manager = RevocationManager(deployment)
        manager.revoke("rc", "A")
        new_aid = manager.reinstate("rc", "A")
        assert new_aid not in original_aid
        deposit(deployment, device, "A", b"post-reinstate")
        messages = retrieve(deployment, client)
        assert {m.plaintext for m in messages} == {b"post-reinstate"}

    def test_static_mode_contrast(self):
        """Ablation 2: without per-message nonces, one extracted key opens
        every past AND future message under the attribute — the audit
        trail shows a single identity reused."""
        deployment = build_deployment(use_nonce=False)
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        for index in range(3):
            deposit(deployment, device, "A", f"m{index}".encode())
        messages = retrieve(deployment, client)
        assert len(messages) == 3
        # All three decrypted with ONE extraction (cache hits for the rest).
        assert client.stats["keys_fetched"] == 1
        assert client.stats["cache_hits"] == 2
        assert len(deployment.pkg.audit_log) == 1
        deployment.close()

    def test_nonce_mode_extracts_per_message(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        for index in range(3):
            deposit(deployment, device, "A", f"m{index}".encode())
        retrieve(deployment, client)
        assert client.stats["keys_fetched"] == 3
        assert len(deployment.pkg.audit_log) == 3

    def test_pkg_side_denylist_blocks_extraction(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m")
        deployment.pkg.deny_attribute("A")
        with pytest.raises(ProtocolError):
            retrieve(deployment, client)


class TestDynamicRecipients:
    def test_new_rc_joins_later_and_reads_backlog(self, deployment):
        """Requirement v: an energy-management company joins after the
        devices have been deployed — a policy row, nothing else."""
        device = deployment.new_smart_device("meter")
        deposit(deployment, device, "ELECTRIC-X", b"historic-1")
        deposit(deployment, device, "ELECTRIC-X", b"historic-2")
        # Device has no idea this client exists:
        newcomer = deployment.new_receiving_client(
            "energy-mgmt", "pw", attributes=["ELECTRIC-X"]
        )
        messages = retrieve(deployment, newcomer)
        assert {m.plaintext for m in messages} == {b"historic-1", b"historic-2"}

    def test_attribute_for_future_recipient_class(self, deployment):
        """A device can address a recipient class nobody occupies yet."""
        device = deployment.new_smart_device("meter")
        deposit(deployment, device, "FUTURE-CLASS", b"time capsule")
        assert len(deployment.mws.message_db) == 1
        late_client = deployment.new_receiving_client(
            "late", "pw", attributes=["FUTURE-CLASS"]
        )
        assert [m.plaintext for m in retrieve(deployment, late_client)] == [
            b"time capsule"
        ]

    def test_grant_extension_at_runtime(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"a-msg")
        deposit(deployment, device, "B", b"b-msg")
        assert {m.plaintext for m in retrieve(deployment, client)} == {b"a-msg"}
        deployment.mws.grant("rc", "B")
        assert {m.plaintext for m in retrieve(deployment, client)} == {
            b"a-msg",
            b"b-msg",
        }
