"""Message segmentation (§VIII future work) and protocol conventions."""

import pytest

from repro.core import (
    Segment,
    SegmentedMessage,
    compute_deposit_mac,
    derive_password_key,
    identity_string,
    parse_segment_payload,
    reassemble,
    segment_payload,
)
from repro.errors import DecodeError


def retrieve(deployment, client):
    return client.retrieve_and_decrypt(
        deployment.rc_mws_channel(client.rc_id),
        deployment.rc_pkg_channel(client.rc_id),
    )


class TestConventions:
    def test_identity_string_unambiguous(self):
        """('ab', 'c') and ('a', 'bc') must produce different identities."""
        assert identity_string("ab", b"c") != identity_string("a", b"bc")

    def test_identity_string_deterministic(self):
        assert identity_string("A", b"n") == identity_string("A", b"n")

    def test_empty_nonce_is_static_mode(self):
        static = identity_string("A", b"")
        assert static != identity_string("A", b"\x00")

    def test_password_key_sized_for_cipher(self):
        hashed = b"\x11" * 32
        assert len(derive_password_key(hashed, "DES")) == 8
        assert len(derive_password_key(hashed, "AES-256")) == 32

    def test_password_key_differs_per_hash(self):
        assert derive_password_key(b"\x01" * 32, "DES") != derive_password_key(
            b"\x02" * 32, "DES"
        )

    def test_deposit_mac_keyed(self):
        payload = b"payload"
        assert compute_deposit_mac(b"key-1", payload) != compute_deposit_mac(
            b"key-2", payload
        )


class TestSegmentPayloads:
    def test_roundtrip(self):
        payload = segment_payload(42, 1, 3, b"segment body")
        assert parse_segment_payload(payload) == (42, 1, 3, b"segment body")

    def test_invalid_header_rejected(self):
        with pytest.raises(DecodeError):
            parse_segment_payload(segment_payload(1, 3, 3, b"x"))  # index >= total
        with pytest.raises(DecodeError):
            parse_segment_payload(segment_payload(1, 0, 0, b"x"))  # total == 0

    def test_reassemble_groups(self):
        payloads = [
            segment_payload(7, 0, 2, b"part-a"),
            segment_payload(7, 1, 2, b"part-b"),
            segment_payload(9, 0, 1, b"solo"),
        ]
        groups = reassemble(payloads)
        assert groups[7]["parts"] == {0: b"part-a", 1: b"part-b"}
        assert groups[9]["total"] == 1

    def test_reassemble_detects_inconsistent_totals(self):
        payloads = [
            segment_payload(7, 0, 2, b"a"),
            segment_payload(7, 1, 3, b"b"),
        ]
        with pytest.raises(DecodeError):
            reassemble(payloads)


class TestSegmentedDeposits:
    def test_per_segment_confidentiality(self, deployment):
        """The paper's three-part message: consumption, errors, events —
        each readable only by its own recipient class."""
        device = deployment.new_smart_device("meter")
        billing = deployment.new_receiving_client(
            "billing", "pw1", attributes=["CONSUMPTION-X"]
        )
        maintenance = deployment.new_receiving_client(
            "maintenance", "pw2", attributes=["ERRORS-X", "EVENTS-X"]
        )
        message = SegmentedMessage(
            group_id=1,
            segments=[
                Segment("CONSUMPTION-X", b"total=12.5kWh"),
                Segment("ERRORS-X", b"errors=none"),
                Segment("EVENTS-X", b"events=powercycle"),
            ],
        )
        ids = message.deposit_all(device, deployment.sd_channel("meter"))
        assert len(ids) == 3

        billing_groups = reassemble(
            [m.plaintext for m in retrieve(deployment, billing)]
        )
        assert billing_groups[1]["parts"] == {0: b"total=12.5kWh"}
        assert billing_groups[1]["total"] == 3  # knows 2 parts are hidden

        maintenance_groups = reassemble(
            [m.plaintext for m in retrieve(deployment, maintenance)]
        )
        assert maintenance_groups[1]["parts"] == {
            1: b"errors=none",
            2: b"events=powercycle",
        }

    def test_multiple_groups_interleaved(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["S"])
        for group_id in (1, 2):
            SegmentedMessage(
                group_id=group_id,
                segments=[Segment("S", f"g{group_id}-a".encode()),
                          Segment("S", f"g{group_id}-b".encode())],
            ).deposit_all(device, deployment.sd_channel("meter"))
        groups = reassemble([m.plaintext for m in retrieve(deployment, client)])
        assert set(groups) == {1, 2}
        assert groups[1]["parts"][0] == b"g1-a"
        assert groups[2]["parts"][1] == b"g2-b"
