"""Incremental retrieval with ``since_us`` (the polling pattern real
deployments of the paper's pull model need)."""


def deposit(deployment, device, attribute, message):
    return device.deposit(deployment.sd_channel(device.device_id), attribute, message)


class TestIncrementalPolling:
    def test_since_filters_old_messages(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"old")
        cutoff = deployment.clock.now_us()
        deposit(deployment, device, "A", b"new")
        response = client.retrieve(deployment.rc_mws_channel("rc"), since_us=cutoff)
        assert len(response.messages) == 1

    def test_poll_loop_sees_each_message_once(self, deployment):
        """The watermark pattern: poll with since = last seen deposit + 1."""
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        channel = deployment.rc_mws_channel("rc")
        watermark = 0
        seen: list[int] = []
        for round_number in range(3):
            deposit(deployment, device, "A", f"round-{round_number}".encode())
            response = client.retrieve(channel, since_us=watermark)
            for message in response.messages:
                seen.append(message.message_id)
                watermark = max(watermark, message.deposited_at_us + 1)
        assert seen == [1, 2, 3]  # each exactly once, in order

    def test_default_since_returns_everything(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        for index in range(3):
            deposit(deployment, device, "A", f"m{index}".encode())
        response = client.retrieve(deployment.rc_mws_channel("rc"))
        assert len(response.messages) == 3

    def test_future_since_returns_nothing(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m")
        response = client.retrieve(
            deployment.rc_mws_channel("rc"),
            since_us=deployment.clock.now_us() + 10**9,
        )
        assert response.messages == []

    def test_token_still_issued_for_empty_increment(self, deployment):
        """Even an empty poll returns a valid token (the RC might hold
        undelivered work from a previous poll)."""
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m")
        response = client.retrieve(
            deployment.rc_mws_channel("rc"),
            since_us=deployment.clock.now_us() + 10**9,
        )
        token = client.open_token(response.token)
        assert len(token.session_key) == 32
