"""A multi-round operational soak of the whole system.

Simulated days of fleet traffic with policy churn, incremental polling
and an admin in the loop — the closest the test suite gets to
production shape.  Everything is asserted against a plain-dict model of
who should have seen what.
"""

from repro.core import RevocationManager
from repro.errors import ProtocolError, UnknownIdentityError
from repro.mws.admin import MwsAdmin
from repro.sim.workload import SmartMeterFleet, WorkloadConfig


ROUNDS = 8
REPORT_INTERVAL_US = 15 * 60 * 1_000_000


class TestOperationalSoak:
    def test_fleet_days_with_policy_churn(self, deployment):
        fleet = SmartMeterFleet(WorkloadConfig(meters_per_kind=2))
        devices = {
            device_id: deployment.new_smart_device(device_id)
            for device_id in fleet.device_ids()
        }
        channels = {
            device_id: deployment.sd_channel(device_id)
            for device_id in devices
        }
        electric = fleet.attribute_for(fleet.kind_of("ELECTRIC-GLENBROOK-000"))
        water = "WATER-GLENBROOK-SV-CA"
        gas = "GAS-GLENBROOK-SV-CA"

        retailer = deployment.new_receiving_client(
            "retailer", "pw-r", attributes=[electric, water, gas]
        )
        analyst = deployment.new_receiving_client(
            "analyst", "pw-a", attributes=[electric]
        )
        manager = RevocationManager(deployment)
        admin = MwsAdmin(deployment.mws)

        expected_retailer: set[bytes] = set()
        expected_analyst: set[bytes] = set()
        analyst_revoked_at_round = 5
        retailer_watermark = 0
        retailer_seen: list[bytes] = []

        for round_number in range(ROUNDS):
            # Every meter reports once per round.
            for device_id, device in devices.items():
                kind = fleet.kind_of(device_id)
                attribute = fleet.attribute_for(kind)
                body = f"{device_id}:round-{round_number}".encode()
                device.deposit(channels[device_id], attribute, body)
                expected_retailer.add(body)
                if attribute == electric and round_number < analyst_revoked_at_round:
                    expected_analyst.add(body)

            # Retailer polls incrementally each round.
            response = retailer.retrieve(
                deployment.rc_mws_channel("retailer"), since_us=retailer_watermark
            )
            for message in response.messages:
                retailer_watermark = max(
                    retailer_watermark, message.deposited_at_us + 1
                )
                retailer_seen.append(message.message_id)

            # Policy churn mid-soak: the analyst loses access.
            if round_number == analyst_revoked_at_round - 1:
                analyst_messages = analyst.retrieve_and_decrypt(
                    deployment.rc_mws_channel("analyst"),
                    deployment.rc_pkg_channel("analyst"),
                )
                assert {m.plaintext for m in analyst_messages} == expected_analyst
                manager.revoke("analyst", electric)

            deployment.clock.advance(REPORT_INTERVAL_US)

        # Retailer's incremental polling saw every message exactly once.
        assert len(retailer_seen) == len(set(retailer_seen))
        assert len(retailer_seen) == ROUNDS * len(devices)

        # Full retailer decryption matches the model.
        full = retailer.retrieve_and_decrypt(
            deployment.rc_mws_channel("retailer"),
            deployment.rc_pkg_channel("retailer"),
        )
        assert {m.plaintext for m in full} == expected_retailer

        # The analyst is locked out post-revocation.
        try:
            late = analyst.retrieve_and_decrypt(
                deployment.rc_mws_channel("analyst"),
                deployment.rc_pkg_channel("analyst"),
            )
            # Either rejected outright (no grants left) ...
            raise AssertionError(f"revoked analyst still retrieved: {late}")
        except (ProtocolError, UnknownIdentityError):
            pass

        # The admin's books balance.
        status = admin.status()
        assert status.messages_stored == ROUNDS * len(devices)
        assert status.deposits_accepted == ROUNDS * len(devices)
        assert status.deposits_rejected == 0
        assert status.devices_registered == len(devices)

        # Audit trail: the analyst's extractions all predate revocation.
        exposure = manager.effective_exposure("analyst")
        assert len(exposure) == len(expected_analyst)
