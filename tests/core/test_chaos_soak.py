"""Seeded chaos soak: the full Fig. 4 pipeline under 10% drop/dup/corrupt.

The acceptance bar from the issue: with per-link drop, duplicate and
corruption probabilities of 10% each, a 100-message run completes with
zero message loss, every retrieval decrypts to the original plaintext,
and a same-seed re-run produces a byte-identical transcript.  With
retries disabled the very same fault plan demonstrably loses messages —
the resilience comes from the transport, not from luck.
"""

import pytest

from repro.clients.transport import RetryPolicy
from repro.core.protocol import ProtocolDriver
from repro.errors import ReproError
from repro.sim.faults import FaultSpec
from tests.conftest import build_deployment

CHAOS = FaultSpec(drop=0.10, duplicate=0.10, corrupt=0.10)
POLICY = RetryPolicy(max_attempts=12, base_backoff_us=1_000, jitter=0.1)
MESSAGES = 100
MARKER = b"CHAOS-CONFIDENTIAL-READING-77461"


def chaos_deployment(retry_policy=POLICY, seed=b"chaos-soak"):
    return build_deployment(seed=seed, faults=CHAOS, retry_policy=retry_policy)


def run_pipeline(deployment):
    device = deployment.new_smart_device("meter-1")
    client = deployment.new_receiving_client("rc", "pw", attributes=["A1"])
    driver = ProtocolDriver(deployment)
    deposits = [("A1", MARKER + b":%03d" % i) for i in range(MESSAGES)]
    transcript = driver.run_full(device, client, deposits)
    return transcript, {body for _attr, body in deposits}


@pytest.mark.slow
class TestChaosSoak:
    def test_zero_loss_and_correct_decryption(self):
        deployment = chaos_deployment()
        transcript, expected = run_pipeline(deployment)
        # The chaos actually fired and the transport actually worked.
        assert transcript.total_faults_injected() > 0
        assert transcript.total_retries() > 0
        # Zero loss: everything committed once, everything decrypts.
        assert len(deployment.mws.message_db) == MESSAGES
        assert len(transcript.deposited_ids) == MESSAGES
        assert {m.plaintext for m in transcript.retrieved} == expected
        deployment.close()

    def test_same_seed_runs_are_byte_identical(self):
        first, _ = run_pipeline(chaos_deployment())
        second, _ = run_pipeline(chaos_deployment())
        assert first.fingerprint() == second.fingerprint()
        other, _ = run_pipeline(chaos_deployment(seed=b"chaos-soak-2"))
        assert other.fingerprint() != first.fingerprint()

    def test_no_plaintext_on_the_wire_or_in_storage(self):
        deployment = chaos_deployment()
        sniffed = []
        deployment.network.add_interceptor(
            lambda s, d, payload: (sniffed.append(payload), payload)[1]
        )
        deployment.network.add_response_interceptor(
            lambda d, s, response: (sniffed.append(response), response)[1]
        )
        transcript, expected = run_pipeline(deployment)
        assert {m.plaintext for m in transcript.retrieved} == expected
        assert sniffed  # the taps saw real traffic
        for payload in sniffed:
            assert MARKER not in payload
        for record in deployment.mws.message_db.by_attribute("A1"):
            assert MARKER not in record.ciphertext
        deployment.close()

    def test_without_retries_the_same_plan_loses_messages(self):
        deployment = chaos_deployment(retry_policy=None)
        device = deployment.new_smart_device("meter-1")
        deployment.new_receiving_client("rc", "pw", attributes=["A1"])
        channel = deployment.sd_channel("meter-1")
        acknowledged = 0
        for i in range(MESSAGES):
            try:
                device.deposit(channel, "A1", MARKER + b":%03d" % i)
                acknowledged += 1
            except ReproError:
                pass
        assert acknowledged < MESSAGES
        assert len(deployment.mws.message_db) < MESSAGES
        deployment.close()
