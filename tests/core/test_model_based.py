"""Model-based property test of the whole system.

Hypothesis generates an arbitrary access-control world — a grant matrix
over RCs and attributes plus a deposit schedule — and the test asserts
the deployed system delivers *exactly* what a trivial dictionary model
of Table 1 predicts: every client decrypts precisely the messages whose
attribute it holds, regardless of interleaving.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import build_deployment

ATTRIBUTES = ["A0", "A1", "A2"]
CLIENTS = ["rc0", "rc1"]

grant_matrix = st.fixed_dictionaries(
    {client: st.sets(st.sampled_from(ATTRIBUTES)) for client in CLIENTS}
)
deposit_schedule = st.lists(
    st.sampled_from(ATTRIBUTES), min_size=0, max_size=6
)


@given(grants=grant_matrix, deposits=deposit_schedule)
@settings(max_examples=12, deadline=None)
def test_system_matches_access_model(grants, deposits):
    deployment = build_deployment(
        seed=b"model-based"  # constant seed: RSA keys stay cached
    )
    try:
        device = deployment.new_smart_device("model-meter")
        clients = {}
        for rc_id in CLIENTS:
            clients[rc_id] = deployment.new_receiving_client(
                rc_id, f"pw-{rc_id}", attributes=sorted(grants[rc_id])
            )
        channel = deployment.sd_channel("model-meter")
        expected: dict[str, set[bytes]] = {rc_id: set() for rc_id in CLIENTS}
        for sequence, attribute in enumerate(deposits):
            body = f"{attribute}-msg-{sequence}".encode()
            device.deposit(channel, attribute, body)
            for rc_id in CLIENTS:
                if attribute in grants[rc_id]:
                    expected[rc_id].add(body)
        for rc_id, client in clients.items():
            if not grants[rc_id]:
                # No grants: the MWS treats the identity as unknown.
                import pytest

                from repro.errors import ProtocolError

                with pytest.raises(ProtocolError):
                    client.retrieve_and_decrypt(
                        deployment.rc_mws_channel(rc_id),
                        deployment.rc_pkg_channel(rc_id),
                    )
                continue
            messages = client.retrieve_and_decrypt(
                deployment.rc_mws_channel(rc_id),
                deployment.rc_pkg_channel(rc_id),
            )
            assert {m.plaintext for m in messages} == expected[rc_id], rc_id
    finally:
        deployment.close()
