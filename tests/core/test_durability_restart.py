"""Whole-service restart: acknowledged state must survive.

Builds an MWS on log-structured stores, runs real traffic, tears the
deployment down (including a simulated torn write), rebuilds from the
same files — deterministic seeding regenerates identical key material,
the stores carry the data — and verifies clients pick up exactly where
they left off.
"""

import os

from repro.mws.service import MwsConfig
from repro.storage.engine import LogStructuredStore
from tests.conftest import build_deployment

SEED = b"tests-durability"


def durable_config(tmp_path) -> MwsConfig:
    return MwsConfig(
        message_store=LogStructuredStore(str(tmp_path / "messages.log")),
        policy_store=LogStructuredStore(str(tmp_path / "policy.log")),
        user_store=LogStructuredStore(str(tmp_path / "users.log")),
        keystore_store=LogStructuredStore(str(tmp_path / "devices.log")),
    )


class TestRestart:
    def test_full_state_survives_restart(self, tmp_path):
        # --- first life -------------------------------------------------
        deployment = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"pre-crash-1")
        device.deposit(deployment.sd_channel("meter"), "A", b"pre-crash-2")
        deployment.close()
        # Torn final write, as a crash would leave it.
        with open(tmp_path / "messages.log", "ab") as handle:
            handle.write(b"\xba\xad")

        # --- second life ---------------------------------------------------
        revived = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        # Registrations survived: no re-registration required or allowed.
        assert revived.mws.device_keys.exists("meter")
        assert revived.mws.user_db.exists("rc")
        assert revived.mws.policy_db.is_authorized("rc", "A")
        # The same client object pattern works against the revived MWS
        # (deterministic seed -> same RSA keys, same master secret).
        from repro.clients.receiving_client import ReceivingClient
        from repro.core.deployment import _RSA_KEYPAIR_CACHE

        keypair = _RSA_KEYPAIR_CACHE[(SEED, "rc", 768)]
        same_client = ReceivingClient(
            "rc", "pw", revived.public_params, keypair, clock=revived.clock
        )
        messages = same_client.retrieve_and_decrypt(
            revived.rc_mws_channel("rc"), revived.rc_pkg_channel("rc")
        )
        assert {m.plaintext for m in messages} == {b"pre-crash-1", b"pre-crash-2"}
        revived.close()

    def test_device_keeps_depositing_after_restart(self, tmp_path):
        deployment = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        device = deployment.new_smart_device("meter")
        deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"before")
        shared_key = deployment.mws.device_keys.shared_key("meter")
        deployment.close()

        revived = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        # The device still holds its provisioned key; the revived MWS
        # recovered the same one from the keystore log.
        assert revived.mws.device_keys.shared_key("meter") == shared_key
        from repro.clients.smart_device import SmartDevice
        from repro.mathlib.rand import HmacDrbg

        same_device = SmartDevice(
            "meter",
            revived.public_params,
            shared_key,
            clock=revived.clock,
            rng=HmacDrbg(b"post-restart"),
        )
        response = same_device.deposit(
            revived.sd_channel("meter"), "A", b"after"
        )
        assert response.accepted
        assert len(revived.mws.message_db) == 2
        revived.close()

    def test_message_ids_continue_after_restart(self, tmp_path):
        deployment = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        device = deployment.new_smart_device("meter")
        first = device.deposit(deployment.sd_channel("meter"), "A", b"1")
        deployment.close()

        revived = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        record = revived.mws.message_db.store("meter", "A", b"", b"x", 0)
        assert record.message_id == first.message_id + 1
        revived.close()

    def test_no_tmp_or_compact_leftovers(self, tmp_path):
        deployment = build_deployment(mws=durable_config(tmp_path), seed=SEED)
        device = deployment.new_smart_device("meter")
        device.deposit(deployment.sd_channel("meter"), "A", b"x")
        deployment.mws.message_db._store.compact()
        deployment.close()
        leftovers = [
            name for name in os.listdir(tmp_path)
            if name.endswith((".tmp", ".compact"))
        ]
        assert leftovers == []
