"""Full-system integration: the Fig. 1 scenario over the wire."""

import pytest

from repro.core import ProtocolDriver
from repro.errors import NetworkError, ProtocolError
from repro.sim.network import TamperInjector
from tests.conftest import build_deployment


def deposit(deployment, device, attribute, message):
    return device.deposit(deployment.sd_channel(device.device_id), attribute, message)


def retrieve(deployment, client):
    return client.retrieve_and_decrypt(
        deployment.rc_mws_channel(client.rc_id),
        deployment.rc_pkg_channel(client.rc_id),
    )


class TestUtilityScenario:
    """The exact Fig. 1 access matrix: C-Services sees all three meter
    kinds, Electric & Gas Company sees electric+gas, Water & Resources
    sees water only."""

    def test_fig1_access_matrix(self, utility_world):
        deployment, devices, clients = utility_world
        bodies = {}
        for kind, device in devices.items():
            body = f"{kind} reading 42.7".encode()
            bodies[kind] = body
            deposit(deployment, device, f"{kind}-GLENBROOK-SV-CA", body)

        expected = {
            "c-services": {"ELECTRIC", "WATER", "GAS"},
            "electric-gas": {"ELECTRIC", "GAS"},
            "water-resources": {"WATER"},
        }
        for rc_id, kinds in expected.items():
            messages = retrieve(deployment, clients[rc_id])
            received = {m.plaintext for m in messages}
            assert received == {bodies[k] for k in kinds}, rc_id

    def test_multiple_messages_per_attribute(self, utility_world):
        deployment, devices, clients = utility_world
        for sequence in range(5):
            deposit(
                deployment,
                devices["WATER"],
                "WATER-GLENBROOK-SV-CA",
                f"water-{sequence}".encode(),
            )
        messages = retrieve(deployment, clients["water-resources"])
        assert sorted(m.plaintext for m in messages) == [
            f"water-{i}".encode() for i in range(5)
        ]

    def test_messages_from_multiple_devices_same_attribute(self, deployment):
        first = deployment.new_smart_device("ELECTRIC-GLENBROOK-001")
        second = deployment.new_smart_device("ELECTRIC-GLENBROOK-002")
        client = deployment.new_receiving_client(
            "utility", "pw", attributes=["ELECTRIC-GLENBROOK-SV-CA"]
        )
        deposit(deployment, first, "ELECTRIC-GLENBROOK-SV-CA", b"from-001")
        deposit(deployment, second, "ELECTRIC-GLENBROOK-SV-CA", b"from-002")
        messages = retrieve(deployment, client)
        assert {m.plaintext for m in messages} == {b"from-001", b"from-002"}

    def test_empty_retrieval(self, deployment):
        client = deployment.new_receiving_client(
            "lonely", "pw", attributes=["NOTHING-YET"]
        )
        assert retrieve(deployment, client) == []

    def test_retrieval_is_idempotent(self, utility_world):
        deployment, devices, clients = utility_world
        deposit(deployment, devices["WATER"], "WATER-GLENBROOK-SV-CA", b"w1")
        first = retrieve(deployment, clients["water-resources"])
        second = retrieve(deployment, clients["water-resources"])
        assert [m.plaintext for m in first] == [m.plaintext for m in second]

    def test_large_message_bodies(self, utility_world):
        deployment, devices, clients = utility_world
        blob = bytes(range(256)) * 40  # 10 KiB
        deposit(deployment, devices["GAS"], "GAS-GLENBROOK-SV-CA", blob)
        messages = retrieve(deployment, clients["electric-gas"])
        assert messages[0].plaintext == blob


class TestModernCipherDeployment:
    def test_aes_deployment_end_to_end(self):
        deployment = build_deployment(
            message_cipher="AES-128", gatekeeper_cipher="AES-256"
        )
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["ATTR"])
        deposit(deployment, device, "ATTR", b"modern ciphers")
        assert [m.plaintext for m in retrieve(deployment, client)] == [
            b"modern ciphers"
        ]
        deployment.close()

    def test_weil_pairing_deployment_end_to_end(self):
        deployment = build_deployment(pairing_algorithm="weil")
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["ATTR"])
        deposit(deployment, device, "ATTR", b"weil works too")
        assert [m.plaintext for m in retrieve(deployment, client)] == [
            b"weil works too"
        ]
        deployment.close()


class TestFaultInjection:
    def test_tampered_deposit_discarded(self, deployment):
        device = deployment.new_smart_device("meter")
        deployment.new_receiving_client("rc", "pw", attributes=["ATTR"])
        injector = TamperInjector(destination="mws-sd", bit_index=100)
        deployment.network.add_interceptor(injector)
        with pytest.raises(ProtocolError) as excinfo:
            deposit(deployment, device, "ATTR", b"will be tampered")
        assert "MAC" in str(excinfo.value) or "malformed" in str(excinfo.value)
        assert injector.tampered == 1
        # Nothing entered the warehouse.
        assert len(deployment.mws.message_db) == 0

    def test_tamper_alert_raised(self, deployment):
        device = deployment.new_smart_device("meter")
        injector = TamperInjector(destination="mws-sd", bit_index=800)
        deployment.network.add_interceptor(injector)
        try:
            deposit(deployment, device, "ATTR", b"x")
        except ProtocolError:
            pass
        assert deployment.mws.alerts  # SDA alerted the administrator

    def test_clean_traffic_resumes_after_attack(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["ATTR"])
        injector = TamperInjector(destination="mws-sd", every_nth=2)
        deployment.network.add_interceptor(injector)
        results = []
        for index in range(4):
            try:
                deposit(deployment, device, "ATTR", f"m{index}".encode())
                results.append("ok")
            except ProtocolError:
                results.append("rejected")
        assert results.count("rejected") == 2
        deployment.network.clear_interceptors()
        messages = retrieve(deployment, client)
        assert len(messages) == 2  # only untampered deposits stored

    def test_dropped_message_surfaces_as_network_error(self, deployment):
        device = deployment.new_smart_device("meter")
        deployment.network.add_interceptor(lambda s, d, p: None)
        with pytest.raises(NetworkError):
            deposit(deployment, device, "ATTR", b"dropped")


class TestProtocolDriver:
    def test_transcript_phases(self, utility_world):
        deployment, devices, clients = utility_world
        driver = ProtocolDriver(deployment)
        transcript = driver.run_full(
            devices["ELECTRIC"],
            clients["c-services"],
            [("ELECTRIC-GLENBROOK-SV-CA", b"r1"), ("ELECTRIC-GLENBROOK-SV-CA", b"r2")],
        )
        assert [t.phase for t in transcript.timings] == ["SD-MWS", "MWS-RC", "RC-PKG"]
        assert len(transcript.deposited_ids) == 2
        assert {m.plaintext for m in transcript.retrieved} == {b"r1", b"r2"}
        # Phase 1 sends one network message per deposit.
        assert transcript.phase("SD-MWS").network_messages == 2
        assert transcript.phase("MWS-RC").network_messages == 1
        # RC-PKG: one auth + one key fetch per message (fresh nonces).
        assert transcript.phase("RC-PKG").network_messages == 3
        assert all(t.duration_s >= 0 for t in transcript.timings)

    def test_missing_phase_raises(self, deployment):
        from repro.core.protocol import ProtocolTranscript

        with pytest.raises(KeyError):
            ProtocolTranscript().phase("SD-MWS")

    def test_retrieval_with_no_messages_skips_pkg(self, deployment):
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        driver = ProtocolDriver(deployment)
        transcript = driver.run_retrieval(client)
        assert transcript.phase("RC-PKG").network_messages == 0
        assert transcript.retrieved == []
