"""Batched deposits: N readings, one MAC, one round-trip."""

import pytest

from repro.errors import ProtocolError
from repro.wire.messages import BatchDepositRequest, BatchDepositResponse, BatchEntry


@pytest.fixture()
def batch_world(deployment):
    device = deployment.new_smart_device("batch-meter")
    client = deployment.new_receiving_client("rc", "pw", attributes=["B1", "B2"])
    return deployment, device, client


class TestWireFormat:
    def test_roundtrip(self):
        request = BatchDepositRequest(
            device_id="meter",
            timestamp_us=123,
            entries=[
                BatchEntry("B1", b"n1", b"ct1"),
                BatchEntry("B2", b"n2", b"ct2"),
            ],
            mac=b"m" * 32,
        )
        assert BatchDepositRequest.from_bytes(request.to_bytes()) == request

    def test_response_roundtrip(self):
        response = BatchDepositResponse(accepted=True, message_ids=[1, 2, 3])
        assert BatchDepositResponse.from_bytes(response.to_bytes()) == response

    def test_mac_payload_covers_entries(self):
        base = BatchDepositRequest(
            "meter", 1, [BatchEntry("A", b"n", b"c")], b""
        )
        mutated = BatchDepositRequest(
            "meter", 1, [BatchEntry("A", b"n", b"d")], b""
        )
        assert base.mac_payload() != mutated.mac_payload()


class TestBatchFlow:
    def test_batch_deposit_and_retrieve(self, batch_world):
        deployment, device, client = batch_world
        response = device.deposit_batch(
            deployment.sd_batch_channel("batch-meter"),
            [("B1", b"reading-1"), ("B2", b"reading-2"), ("B1", b"reading-3")],
        )
        assert response.accepted
        assert response.message_ids == [1, 2, 3]
        messages = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        assert {m.plaintext for m in messages} == {
            b"reading-1", b"reading-2", b"reading-3",
        }

    def test_each_entry_independently_encrypted(self, batch_world):
        """Per-message nonces survive batching: every entry has its own
        IBE identity, so revocation granularity is unchanged."""
        deployment, device, _client = batch_world
        request = device.build_batch([("B1", b"x"), ("B1", b"y")])
        nonces = {entry.nonce for entry in request.entries}
        assert len(nonces) == 2

    def test_tampered_batch_rejected_entirely(self, batch_world):
        deployment, device, _client = batch_world
        request = device.build_batch([("B1", b"x"), ("B2", b"y")])
        ciphertext = bytearray(request.entries[1].ciphertext)
        ciphertext[len(ciphertext) // 2] ^= 0x01
        request.entries[1].ciphertext = bytes(ciphertext)
        raw = deployment.network.send(
            "batch-meter", "mws-sd-batch", request.to_bytes()
        )
        response = BatchDepositResponse.from_bytes(raw)
        assert not response.accepted
        assert len(deployment.mws.message_db) == 0  # all-or-nothing

    def test_retransmitted_batch_replays_committed_response(self, batch_world):
        """A byte-identical retransmit (the lost-ack case) is served the
        original response idempotently: nothing is stored twice."""
        deployment, device, _client = batch_world
        request = device.build_batch([("B1", b"x")])
        first = BatchDepositResponse.from_bytes(
            deployment.network.send("batch-meter", "mws-sd-batch", request.to_bytes())
        )
        assert first.accepted
        second = BatchDepositResponse.from_bytes(
            deployment.network.send("batch-meter", "mws-sd-batch", request.to_bytes())
        )
        assert second.accepted
        assert second.message_ids == first.message_ids
        assert len(deployment.mws.message_db) == 1
        assert deployment.mws.sda.stats["retransmits_replayed"] == 1

    def test_unknown_device_rejected(self, batch_world):
        deployment, device, _client = batch_world
        deployment.mws.revoke_device("batch-meter")
        with pytest.raises(ProtocolError):
            device.deposit_batch(
                deployment.sd_batch_channel("batch-meter"), [("B1", b"x")]
            )

    def test_empty_batch_accepted_as_noop(self, batch_world):
        deployment, device, _client = batch_world
        response = device.deposit_batch(
            deployment.sd_batch_channel("batch-meter"), []
        )
        assert response.accepted and response.message_ids == []

    def test_malformed_batch_bytes(self, batch_world):
        deployment, _device, _client = batch_world
        raw = deployment.network.send("x", "mws-sd-batch", b"garbage")
        response = BatchDepositResponse.from_bytes(raw)
        assert not response.accepted and "malformed" in response.error

    def test_batch_wire_overhead_amortised(self, batch_world):
        """Total bytes for N batched deposits < N single deposits."""
        deployment, device, _client = batch_world
        items = [("B1", b"reading-%d" % i) for i in range(5)]
        batch_bytes = len(device.build_batch(items).to_bytes())
        single_bytes = sum(
            len(device.build_deposit(attribute, body).to_bytes())
            for attribute, body in items
        )
        assert batch_bytes < single_bytes
