"""Property suite: replication conserves the message multiset.

The PR 6 concurrency-conservation pattern extended to replicas
(ISSUE 7): for ANY seed and ANY fault plan drawn from leader kills,
worker crashes, follower lag and a mid-rebalance drain crash, the
replicated sharded warehouse must

* accept, retrieve and account for exactly the same message multiset
  (no loss, no duplication, per-shard counts summing to the accepted
  set),
* return byte-identical ciphertexts (faults reorder work, never
  rewrite a record), and
* reproduce the scheduler transcript fingerprint and the observability
  dump byte for byte when re-run from the same seeds — any failing
  plan is replayable.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.deployment import Deployment, DeploymentConfig
from repro.mathlib.rand import HmacDrbg
from repro.mws.runtime import ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec

ATTRIBUTES = ("ELECTRIC-P-SV", "WATER-P-SV", "GAS-P-SV")


def run_once(
    scheduler_seed,
    plan_seed,
    workers,
    crash,
    leader_kill,
    follower_lag,
    rebalance,
    rebalance_crash_after,
):
    deployment = Deployment.build(
        DeploymentConfig(
            preset="TOY64",
            rsa_bits=768,
            seed=b"replication-conservation",
            mws=MwsConfig(message_shards=2, message_replicas=2),
        )
    )
    try:
        plan = FaultPlan(HmacDrbg(plan_seed), registry=deployment.registry)
        plan.set_worker_faults(
            WorkerFaultSpec(
                crash=crash,
                max_crashes=2,
                leader_kill=leader_kill,
                max_leader_kills=2,
                follower_lag=follower_lag,
            )
        )
        deployment.network.install_fault_plan(plan)
        jobs = [
            (
                f"rc-dev-{index}",
                [
                    (
                        ATTRIBUTES[seq % len(ATTRIBUTES)],
                        f"device=rc-{index};seq={seq}".encode("ascii"),
                    )
                    for seq in range(4)
                ],
            )
            for index in range(3)
        ]
        pool = ShardWorkerPool(
            deployment,
            workers=workers,
            scheduler_seed=scheduler_seed,
            failover_every=3,
            rebalance_stores=[None, None] if rebalance else None,
            rebalance_after=1,
            rebalance_crash_after=rebalance_crash_after if rebalance else None,
        )
        result = pool.run(jobs)
        return result, deployment.obs_dump_json()
    finally:
        deployment.close()


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler_seed=st.binary(min_size=1, max_size=8),
    plan_seed=st.binary(min_size=1, max_size=8),
    workers=st.integers(min_value=1, max_value=3),
    crash=st.sampled_from([0.0, 0.3]),
    leader_kill=st.sampled_from([0.0, 0.5, 1.0]),
    follower_lag=st.sampled_from([0.0, 0.8]),
    rebalance=st.booleans(),
    rebalance_crash_after=st.sampled_from([None, 1, 3]),
)
def test_any_fault_plan_conserves_and_replays(
    scheduler_seed,
    plan_seed,
    workers,
    crash,
    leader_kill,
    follower_lag,
    rebalance,
    rebalance_crash_after,
):
    args = (
        scheduler_seed,
        plan_seed,
        workers,
        crash,
        leader_kill,
        follower_lag,
        rebalance,
        rebalance_crash_after,
    )
    result, dump = run_once(*args)

    assert result.conservation_ok(), {
        "lost": result.lost_ids,
        "duplicated": result.duplicate_ids,
        "shards": result.shard_counts,
        "accepted": len(result.accepted_ids),
        "digest_conflicts": result.digest_conflicts,
    }
    assert len(result.accepted_ids) == 12
    # Every retrieved message carries its original ciphertext bytes.
    assert set(result.retrieved_digests) == set(result.accepted_ids)

    replay, replay_dump = run_once(*args)
    assert replay.fingerprint() == result.fingerprint()
    assert replay_dump == dump


def test_leader_kill_storm_conserves():
    """The worst deterministic corner: a kill on every chaos tick."""
    result, _dump = run_once(b"storm", b"storm-plan", 2, 0.0, 1.0, 0.8, True, 2)
    assert result.conservation_ok()
    assert result.failovers > 0
    assert result.rebalance_moves > 0


def test_digest_sets_identical_across_plans():
    """Fault plans may reorder ids but never change the ciphertext
    multiset the RC receives."""
    clean, _ = run_once(b"seed", b"plan", 2, 0.0, 0.0, 0.0, False, None)
    chaotic, _ = run_once(b"seed", b"plan", 2, 0.3, 1.0, 0.8, True, 2)
    assert sorted(clean.retrieved_digests.values()) == sorted(
        chaotic.retrieved_digests.values()
    )
