"""The three storage backends: shared contract + log-structured specifics."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError, StorageError
from repro.storage.engine import (
    FlatFileStore,
    LogStructuredStore,
    MemoryStore,
    open_store,
)


@pytest.fixture(params=["memory", "flatfile", "log"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = MemoryStore()
    elif request.param == "flatfile":
        backend = FlatFileStore(str(tmp_path / "flat"))
    else:
        backend = LogStructuredStore(str(tmp_path / "store.log"))
    yield backend
    backend.close()


class TestContract:
    """Behaviour every backend must share."""

    def test_put_get(self, store):
        store.put(b"key", b"value")
        assert store.get(b"key") == b"value"

    def test_missing_key_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get(b"ghost")

    def test_overwrite_last_write_wins(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        assert not store.contains(b"k")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k")

    def test_delete_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.delete(b"ghost")

    def test_keys_and_items(self, store):
        entries = {bytes([i]): bytes([i]) * 3 for i in range(10)}
        for key, value in entries.items():
            store.put(key, value)
        assert sorted(store.keys()) == sorted(entries)
        assert dict(store.items()) == entries

    def test_empty_value_allowed(self, store):
        store.put(b"empty", b"")
        assert store.get(b"empty") == b""

    def test_binary_keys_and_values(self, store):
        key = bytes(range(256))[:32]
        value = bytes(range(256))
        store.put(key, value)
        assert store.get(key) == value

    def test_contains(self, store):
        assert not store.contains(b"x")
        store.put(b"x", b"1")
        assert store.contains(b"x")

    @given(
        operations=st.lists(
            st.tuples(st.binary(min_size=1, max_size=8), st.binary(max_size=32)),
            max_size=30,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_dict_model(self, operations):
        """Property: any put sequence must behave exactly like a dict."""
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            backend = LogStructuredStore(os.path.join(directory, "model.log"))
            model = {}
            for key, value in operations:
                backend.put(key, value)
                model[key] = value
            assert dict(backend.items()) == model
            backend.close()


class TestLogStructuredSpecifics:
    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.log")
        store = LogStructuredStore(path)
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.delete(b"a")
        store.close()
        recovered = LogStructuredStore(path)
        assert recovered.get(b"b") == b"2"
        assert not recovered.contains(b"a")
        recovered.close()

    def test_reopen_method(self, tmp_path):
        store = LogStructuredStore(str(tmp_path / "r.log"))
        store.put(b"k", b"v")
        store.reopen()
        assert store.get(b"k") == b"v"
        store.put(b"k2", b"v2")  # appends still work after reopen
        assert store.get(b"k2") == b"v2"
        store.close()

    def test_torn_final_write_truncated(self, tmp_path):
        path = str(tmp_path / "torn.log")
        store = LogStructuredStore(path)
        store.put(b"good", b"record")
        store.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01\x02\x03\x04")  # half a frame
        recovered = LogStructuredStore(path)
        assert recovered.get(b"good") == b"record"
        # The torn tail was truncated, so new appends read back fine.
        recovered.put(b"new", b"entry")
        recovered.reopen()
        assert recovered.get(b"new") == b"entry"
        recovered.close()

    def test_corrupt_middle_record_stops_replay(self, tmp_path):
        path = str(tmp_path / "corrupt.log")
        store = LogStructuredStore(path)
        store.put(b"first", b"1")
        store.put(b"second", b"2")
        store.close()
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF  # corrupt somewhere in record 2
        with open(path, "wb") as handle:
            handle.write(data)
        recovered = LogStructuredStore(path)
        assert recovered.get(b"first") == b"1"
        assert not recovered.contains(b"second")
        recovered.close()

    def test_compaction_reclaims_space(self, tmp_path):
        store = LogStructuredStore(str(tmp_path / "c.log"))
        for round_number in range(20):
            store.put(b"hot-key", b"v" * 100 + bytes([round_number]))
        store.put(b"cold", b"keep me")
        store.delete(b"hot-key")
        before = store.file_bytes()
        store.compact()
        after = store.file_bytes()
        assert after < before
        assert store.get(b"cold") == b"keep me"
        assert not store.contains(b"hot-key")
        store.close()

    def test_live_bytes_vs_file_bytes(self, tmp_path):
        store = LogStructuredStore(str(tmp_path / "lb.log"))
        store.put(b"k", b"v" * 50)
        store.put(b"k", b"v" * 50)  # shadowed write
        assert store.live_bytes() < store.file_bytes()
        store.compact()
        assert store.live_bytes() == store.file_bytes()
        store.close()

    def test_compaction_survives_reopen(self, tmp_path):
        path = str(tmp_path / "cr.log")
        store = LogStructuredStore(path)
        for i in range(10):
            store.put(bytes([i]), bytes([i]) * 10)
        store.compact()
        store.close()
        recovered = LogStructuredStore(path)
        assert len(recovered) == 10
        recovered.close()

    def test_sync_mode_works(self, tmp_path):
        store = LogStructuredStore(str(tmp_path / "s.log"), sync=True)
        store.put(b"durable", b"yes")
        assert store.get(b"durable") == b"yes"
        store.close()

    def test_context_manager(self, tmp_path):
        with LogStructuredStore(str(tmp_path / "cm.log")) as store:
            store.put(b"k", b"v")
        # close() ran; reopening sees the data.
        with LogStructuredStore(str(tmp_path / "cm.log")) as store:
            assert store.get(b"k") == b"v"


class TestFlatFileSpecifics:
    def test_foreign_files_ignored(self, tmp_path):
        directory = tmp_path / "ff"
        store = FlatFileStore(str(directory))
        store.put(b"\x01", b"v")
        (directory / "not-a-record.txt").write_text("noise")
        (directory / "zzzz.rec").write_text("bad hex name")
        assert store.keys() == [b"\x01"]

    def test_non_canonical_names_are_not_keys(self, tmp_path):
        """Regression: decode must be the exact inverse of encode.

        ``bytes.fromhex`` accepts uppercase and embedded whitespace, so
        "AB.rec" and "ab  cd.rec" used to decode into keys whose
        canonical file name differs from the file actually on disk —
        yielding phantom (and potentially duplicate) keys that ``get``
        then reads from the wrong file or fails on.
        """
        directory = tmp_path / "ff-canon"
        store = FlatFileStore(str(directory))
        store.put(b"\xab", b"canonical")
        (directory / "AB.rec").write_bytes(b"foreign uppercase")
        (directory / "ab cd.rec").write_bytes(b"foreign whitespace")
        assert store.keys() == [b"\xab"]
        assert store.get(b"\xab") == b"canonical"

    def test_case_variant_file_never_shadows_key(self, tmp_path):
        """A pre-existing uppercase name must not collide with a real put."""
        directory = tmp_path / "ff-case"
        directory.mkdir()
        (directory / "AB.rec").write_bytes(b"imposter")
        store = FlatFileStore(str(directory))
        assert store.keys() == []
        store.put(b"\xab", b"real")
        assert sorted(store.keys()) == [b"\xab"]
        assert store.get(b"\xab") == b"real"

    def test_atomic_replacement(self, tmp_path):
        """No .tmp files left behind after writes."""
        directory = tmp_path / "ff2"
        store = FlatFileStore(str(directory))
        for i in range(10):
            store.put(b"k", bytes([i]))
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []


class TestFactory:
    def test_open_store_kinds(self, tmp_path):
        assert isinstance(open_store("memory"), MemoryStore)
        assert isinstance(
            open_store("flatfile", str(tmp_path / "f")), FlatFileStore
        )
        log_store = open_store("log", str(tmp_path / "l.log"))
        assert isinstance(log_store, LogStructuredStore)
        log_store.close()

    def test_open_store_errors(self, tmp_path):
        with pytest.raises(StorageError):
            open_store("sqlite")
        with pytest.raises(StorageError):
            open_store("flatfile")
        with pytest.raises(StorageError):
            open_store("log")
