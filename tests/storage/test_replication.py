"""WAL-shipped replica sets and failover (repro.storage.replication).

Includes the interop regressions ISSUE 7 asks for: a pre-replication
single-shard ``MessageDatabase`` opens unchanged under the new code
path, and old wire encodings round-trip through a replicated
deployment.
"""

import pytest

from repro.errors import KeyNotFoundError, StorageError
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimClock
from repro.storage.engine import LogStructuredStore, MemoryStore
from repro.storage.message_db import MessageDatabase
from repro.storage.replication import ReplicaSet
from repro.storage.sharding import ShardedMessageDatabase


def deposit(db, attribute, index=0, at_us=1_000):
    return db.store(
        device_id=f"meter-{index:03d}",
        attribute=attribute,
        nonce=bytes([index % 256]) * 4,
        ciphertext=f"ct-{attribute}-{index}".encode(),
        deposited_at_us=at_us + index,
    )


class TestReplicaSet:
    def test_mutations_reach_every_replica(self):
        rs = ReplicaSet(3)
        for index in range(5):
            deposit(rs, "ELECTRIC-P-SV", index)
        for replica in rs.replicas:
            assert len(replica.db) == 5
            assert replica.applied_lsn == 5

    def test_quorum_acks_before_return(self):
        rs = ReplicaSet(3, quorum=2)
        rs.set_lag_decider(lambda: True)  # every non-quorum follower lags
        deposit(rs, "WATER-P-SV")
        applied = [r for r in rs.replicas if r.applied_lsn >= rs.committed_lsn]
        assert len(applied) >= 2  # leader + one follower acked
        lagging = [r for r in rs.replicas if r.pending]
        assert len(lagging) == 1  # the third deferred

    def test_delete_replicates_and_missing_id_raises(self):
        rs = ReplicaSet(2)
        record = deposit(rs, "GAS-P-SV")
        rs.delete(record.message_id)
        for replica in rs.replicas:
            assert len(replica.db) == 0
        with pytest.raises(KeyNotFoundError):
            rs.delete(record.message_id)

    def test_failover_promotes_most_caught_up(self):
        rs = ReplicaSet(3, quorum=2)
        records = [deposit(rs, "ELECTRIC-P-SV", i) for i in range(4)]
        old_leader = rs.leader.replica_id
        promoted = rs.fail_leader()
        assert promoted != old_leader
        # Read-your-writes: everything committed pre-crash is served.
        for record in records:
            assert rs.fetch(record.message_id).ciphertext == record.ciphertext
        assert rs.replica_count == 3  # a fresh replica rejoined

    def test_failover_with_lagging_followers_loses_nothing(self):
        rs = ReplicaSet(3, quorum=2)
        rs.set_lag_decider(lambda: True)
        for index in range(6):
            deposit(rs, "WATER-P-SV", index)
        rs.fail_leader()
        assert len(rs) == 6
        assert rs.leader.applied_lsn == rs.committed_lsn

    def test_repeated_failovers_conserve(self):
        rs = ReplicaSet(3, quorum=2)
        records = [deposit(rs, "GAS-P-SV", i) for i in range(3)]
        for _ in range(4):
            rs.fail_leader()
            records.append(deposit(rs, "GAS-P-SV", len(records)))
        assert len(rs) == len(records)
        for record in records:
            assert rs.fetch(record.message_id).to_bytes() == record.to_bytes()

    def test_single_replica_cannot_fail_over(self):
        rs = ReplicaSet(1)
        with pytest.raises(StorageError):
            rs.fail_leader()

    def test_quorum_bounds_validated(self):
        with pytest.raises(StorageError):
            ReplicaSet(3, quorum=0)
        with pytest.raises(StorageError):
            ReplicaSet(3, quorum=4)
        with pytest.raises(StorageError):
            ReplicaSet([])

    def test_pump_drains_lagging_followers(self):
        rs = ReplicaSet(3, quorum=2)
        rs.set_lag_decider(lambda: True)
        for index in range(4):
            deposit(rs, "ELECTRIC-P-SV", index)
        assert rs.min_applied_lsn() < rs.committed_lsn
        rs.pump()
        assert rs.min_applied_lsn() == rs.committed_lsn

    def test_truncate_then_rejoin_reseeds_from_leader(self):
        rs = ReplicaSet(2)
        for index in range(5):
            deposit(rs, "WATER-P-SV", index)
        assert rs.truncate_applied() == 5
        rs.fail_leader()  # the rejoiner must snapshot, the WAL is gone
        assert len(rs) == 5
        for replica in rs.replicas:
            assert len(replica.db) == 5

    def test_metrics_families(self):
        registry = MetricsRegistry(SimClock())
        rs = ReplicaSet(2, registry=registry, shard_index=3)
        deposit(rs, "ELECTRIC-P-SV")
        rs.fail_leader()
        counters = registry.counter_values()
        assert counters["replication.shard.3.shipped"] == 2
        assert counters["replication.shard.3.failovers"] == 1
        assert counters["storage.wal.shard.3.appends"] == 1


class TestInterop:
    """Pre-replication data and wire formats under the new code path."""

    def test_pre_replication_store_opens_as_replica_set(self, tmp_path):
        """A single-shard MessageDatabase written before replication
        existed seeds a ReplicaSet leader unchanged, and followers
        converge on open."""
        path = tmp_path / "legacy.db"
        legacy = MessageDatabase(LogStructuredStore(str(path)))
        originals = [deposit(legacy, "ELECTRIC-P-SV", i) for i in range(6)]
        legacy.close()

        rs = ReplicaSet([LogStructuredStore(str(path)), None, None])
        assert len(rs) == 6
        for original in originals:
            assert rs.fetch(original.message_id).to_bytes() == original.to_bytes()
        for replica in rs.replicas:
            assert len(replica.db) == 6
        rs.fail_leader()
        assert len(rs) == 6
        rs.close()

    def test_single_replica_set_matches_plain_database(self):
        """replicas=1 degenerates to the classic store, byte for byte."""
        plain = MessageDatabase(MemoryStore())
        rs = ReplicaSet(1)
        for index in range(8):
            attribute = f"ATTR-{index % 3}"
            a = deposit(plain, attribute, index)
            b = deposit(rs, attribute, index)
            assert a.to_bytes() == b.to_bytes()
        assert [r.to_bytes() for r in plain.records()] == [
            r.to_bytes() for r in rs.records()
        ]

    def test_sharded_replicated_matches_sharded_plain(self):
        """Adding replicas must not change ids, routing or bytes."""
        plain = ShardedMessageDatabase(4)
        replicated = ShardedMessageDatabase(4, replicas=3)
        for index in range(30):
            attribute = f"INTEROP-ATTR-{index % 7}"
            a = deposit(plain, attribute, index)
            b = deposit(replicated, attribute, index)
            assert a.to_bytes() == b.to_bytes()
        assert plain.shard_counts() == replicated.shard_counts()

    def test_old_wire_encodings_round_trip_replicated(self):
        """Single-deposit and batch requests built by the existing
        clients land and are retrieved through a replicated deployment
        — the wire format carries no replication fields."""
        from repro.core.deployment import Deployment, DeploymentConfig
        from repro.mws.service import MwsConfig

        deployment = Deployment.build(
            DeploymentConfig(
                preset="TOY64",
                rsa_bits=768,
                seed=b"replication-interop",
                mws=MwsConfig(message_shards=2, message_replicas=2),
            )
        )
        try:
            device = deployment.new_smart_device("interop-sd-0")
            response = device.deposit(
                deployment.sd_channel(device.device_id),
                "ELECTRIC-P-SV",
                b"reading=1.0kWh;interop",
            )
            assert response.accepted
            receipt = device.deposit_many(
                deployment.sd_many_channel(device.device_id),
                [("WATER-P-SV", b"reading=2.0m3;interop")] * 3,
            )
            assert receipt.accepted_count == 3
            # Fail over every shard, then retrieve through the old
            # paged protocol: nothing lost, nothing duplicated.
            warehouse = deployment.mws.message_db
            for index in range(warehouse.shard_count):
                warehouse.fail_shard_leader(index)
            client = deployment.new_receiving_client(
                "interop-rc",
                "interop-password",
                attributes=["ELECTRIC-P-SV", "WATER-P-SV"],
            )
            _token, messages = client.retrieve_all(
                deployment.rc_page_channel(client.rc_id), page_size=2
            )
            assert len(messages) == 4
            assert len({m.message_id for m in messages}) == 4
        finally:
            deployment.close()
