"""Property suite: shard routing is backend-independent.

A :class:`ShardedMessageDatabase` over Memory, FlatFile and
LogStructured backends must be observationally identical for any
deposit workload: byte-identical ``MessageRecord`` encodings, the same
shard assignment, the same retrieval sets — and stay that way through
shard-local compaction and a rebalance that grows the fleet.  Routing
decisions depend only on the attribute hash, never on what is
underneath a shard.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.engine import FlatFileStore, LogStructuredStore, MemoryStore
from repro.storage.sharding import ShardedMessageDatabase

ATTRIBUTES = [f"KIND{index}-GLENBROOK-SV-CA" for index in range(6)]

#: A workload is a list of (attribute index, payload) deposits.
WORKLOADS = st.lists(
    st.tuples(st.integers(0, len(ATTRIBUTES) - 1), st.binary(min_size=1, max_size=24)),
    min_size=1,
    max_size=20,
)

SHARDS = 3


def _deposit_all(db, workload):
    for index, (attribute_index, payload) in enumerate(workload):
        db.store(
            device_id=f"meter-{index % 4:03d}",
            attribute=ATTRIBUTES[attribute_index],
            nonce=bytes([index % 256]) * 2,
            ciphertext=payload,
            deposited_at_us=1_000 + index,
        )


def _observation(db):
    """Everything an MMS could see, as comparable plain data."""
    return {
        "len": len(db),
        "attributes": db.attributes(),
        "shard_counts": list(db.shard_counts()),
        "owners": {a: db.shard_for(a) for a in ATTRIBUTES},
        "by_attribute": {
            a: [record.to_bytes() for record in db.by_attribute(a)]
            for a in ATTRIBUTES
        },
        "union": [record.to_bytes() for record in db.by_attributes(ATTRIBUTES)],
        "time_range": [
            record.to_bytes() for record in db.by_time_range(1_000, 1_020)
        ],
    }


def _backends(tmp_dir):
    """One shard-store list per backend kind, same shapes everywhere."""
    return {
        "memory": [MemoryStore() for _ in range(SHARDS)],
        "flatfile": [
            FlatFileStore(f"{tmp_dir}/flat-{index}") for index in range(SHARDS)
        ],
        "logstructured": [
            LogStructuredStore(f"{tmp_dir}/log-{index}.log")
            for index in range(SHARDS)
        ],
    }


@given(workload=WORKLOADS)
@settings(max_examples=15, deadline=None)
def test_backends_observationally_identical(workload):
    with tempfile.TemporaryDirectory() as tmp_dir:
        observations = {}
        for name, stores in _backends(tmp_dir).items():
            db = ShardedMessageDatabase(stores)
            _deposit_all(db, workload)
            observations[name] = _observation(db)
            db.close()
        assert observations["flatfile"] == observations["memory"]
        assert observations["logstructured"] == observations["memory"]


@given(workload=WORKLOADS)
@settings(max_examples=10, deadline=None)
def test_compaction_is_invisible_on_every_backend(workload):
    with tempfile.TemporaryDirectory() as tmp_dir:
        observations = {}
        for name, stores in _backends(tmp_dir).items():
            db = ShardedMessageDatabase(stores)
            _deposit_all(db, workload)
            # Delete the first record so compaction has garbage to drop.
            db.delete(1)
            before = _observation(db)
            db.compact()
            assert _observation(db) == before
            observations[name] = before
            db.close()
        assert observations["flatfile"] == observations["memory"]
        assert observations["logstructured"] == observations["memory"]


@given(workload=WORKLOADS)
@settings(max_examples=10, deadline=None)
def test_rebalance_converges_across_backends(workload):
    """Growing each fleet by two shards moves the same attributes
    everywhere and preserves every record byte-for-byte."""
    with tempfile.TemporaryDirectory() as tmp_dir:
        observations = {}
        moved_counts = {}
        for name, stores in _backends(tmp_dir).items():
            db = ShardedMessageDatabase(stores)
            _deposit_all(db, workload)
            union_before = [r.to_bytes() for r in db.by_attributes(ATTRIBUTES)]
            moved_counts[name] = db.rebalance([None, None])
            observation = _observation(db)
            assert observation["union"] == union_before
            observations[name] = observation
            db.close()
        assert observations["flatfile"] == observations["memory"]
        assert observations["logstructured"] == observations["memory"]
        assert moved_counts["flatfile"] == moved_counts["memory"]
        assert moved_counts["logstructured"] == moved_counts["memory"]
