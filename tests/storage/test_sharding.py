"""The consistent-hash shard router (repro.storage.sharding)."""

import pytest

from repro.errors import KeyNotFoundError, StorageError
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimClock
from repro.storage.engine import LogStructuredStore, MemoryStore
from repro.storage.message_db import MessageDatabase
from repro.storage.sharding import DEFAULT_VNODES, HashRing, ShardedMessageDatabase


def deposit(db, attribute, index=0, at_us=1_000):
    return db.store(
        device_id=f"meter-{index:03d}",
        attribute=attribute,
        nonce=bytes([index % 256]) * 4,
        ciphertext=f"ct-{attribute}-{index}".encode(),
        deposited_at_us=at_us + index,
    )


ATTRIBUTES = [f"ELECTRIC-COMPLEX{i:02d}-SV-CA" for i in range(40)]


class TestHashRing:
    def test_deterministic_across_instances(self):
        first = HashRing(8)
        second = HashRing(8)
        assert [first.shard_for(a) for a in ATTRIBUTES] == [
            second.shard_for(a) for a in ATTRIBUTES
        ]

    def test_every_shard_reachable(self):
        ring = HashRing(4)
        owners = {ring.shard_for(f"attr-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(a) for a in ATTRIBUTES} == {0}

    def test_growth_only_moves_to_new_shards(self):
        """Consistent-hashing invariant: old→old moves never happen."""
        small, large = HashRing(4), HashRing(6)
        moved = 0
        for i in range(1000):
            attribute = f"attr-{i}"
            before, after = small.shard_for(attribute), large.shard_for(attribute)
            if before != after:
                moved += 1
                assert after >= 4, f"{attribute} moved between old shards"
        # Expected move fraction is 2/6; allow generous slack either side.
        assert 0.05 < moved / 1000 < 0.60

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(StorageError):
            HashRing(0)
        with pytest.raises(StorageError):
            HashRing(4, vnodes=0)

    def test_default_vnodes_spread_load(self):
        ring = HashRing(4, vnodes=DEFAULT_VNODES)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[ring.shard_for(f"meter-attr-{i}")] += 1
        assert min(counts) > 0.5 * (2000 / 4)


class TestShardedMessageDatabase:
    def test_colocation_single_shard_lookup(self):
        db = ShardedMessageDatabase(4)
        for index in range(12):
            deposit(db, "WATER-GLENBROOK-SV-CA", index)
        owner = db.shard_for("WATER-GLENBROOK-SV-CA")
        assert len(db.shard(owner).by_attribute("WATER-GLENBROOK-SV-CA")) == 12
        for other in range(4):
            if other != owner:
                assert db.shard(other).by_attribute("WATER-GLENBROOK-SV-CA") == []

    def test_global_ids_monotonic_and_unique(self):
        db = ShardedMessageDatabase(4)
        ids = [deposit(db, a, i).message_id for i, a in enumerate(ATTRIBUTES)]
        assert ids == list(range(1, len(ATTRIBUTES) + 1))

    def test_fetch_and_delete_route_by_id(self):
        db = ShardedMessageDatabase(3)
        record = deposit(db, ATTRIBUTES[0])
        assert db.fetch(record.message_id).ciphertext == record.ciphertext
        db.delete(record.message_id)
        with pytest.raises(KeyNotFoundError):
            db.fetch(record.message_id)
        assert len(db) == 0

    def test_matches_unsharded_database(self):
        """Same workload, same answers as the plain MessageDatabase."""
        flat = MessageDatabase(MemoryStore())
        sharded = ShardedMessageDatabase(5)
        for index, attribute in enumerate(ATTRIBUTES * 3):
            deposit(flat, attribute, index)
            deposit(sharded, attribute, index)
        assert sharded.attributes() == flat.attributes()
        assert len(sharded) == len(flat)
        for attribute in ATTRIBUTES:
            assert [r.to_bytes() for r in sharded.by_attribute(attribute)] == [
                r.to_bytes() for r in flat.by_attribute(attribute)
            ]
        assert [r.message_id for r in sharded.by_time_range(1_000, 1_060)] == [
            r.message_id for r in flat.by_time_range(1_000, 1_060)
        ]
        assert [
            r.to_bytes() for r in sharded.by_attributes(ATTRIBUTES[:7])
        ] == [r.to_bytes() for r in flat.by_attributes(ATTRIBUTES[:7])]

    def test_conservation_across_shards(self):
        db = ShardedMessageDatabase(6)
        for index, attribute in enumerate(ATTRIBUTES * 2):
            deposit(db, attribute, index)
        assert sum(db.shard_counts()) == len(ATTRIBUTES) * 2 == len(db)

    def test_reopen_rebuilds_routing(self, tmp_path):
        stores = [
            LogStructuredStore(str(tmp_path / f"shard-{i}.log")) for i in range(3)
        ]
        db = ShardedMessageDatabase(stores)
        records = [deposit(db, a, i) for i, a in enumerate(ATTRIBUTES[:9])]
        db.close()
        reopened = ShardedMessageDatabase(
            [LogStructuredStore(str(tmp_path / f"shard-{i}.log")) for i in range(3)]
        )
        for record in records:
            assert reopened.fetch(record.message_id).to_bytes() == record.to_bytes()
        fresh = deposit(reopened, "NEW-ATTRIBUTE", 99)
        assert fresh.message_id == records[-1].message_id + 1
        reopened.close()

    def test_rebalance_moves_only_to_new_shards(self):
        db = ShardedMessageDatabase(4)
        for index, attribute in enumerate(ATTRIBUTES * 2):
            deposit(db, attribute, index)
        before = {
            record.message_id: record.to_bytes()
            for attribute in ATTRIBUTES
            for record in db.by_attribute(attribute)
        }
        owners_before = {a: db.shard_for(a) for a in ATTRIBUTES}
        moved = db.rebalance([None, None])
        assert db.shard_count == 6
        assert sum(db.shard_counts()) == len(before)
        for attribute in ATTRIBUTES:
            owner = db.shard_for(attribute)
            if owner != owners_before[attribute]:
                assert owner >= 4  # only new shards gained attributes
        after = {
            record.message_id: record.to_bytes()
            for attribute in ATTRIBUTES
            for record in db.by_attribute(attribute)
        }
        assert after == before  # byte-identical records, identical sets
        changed = [a for a in ATTRIBUTES if owners_before[a] != db.shard_for(a)]
        assert moved == 2 * len(changed)  # each attribute was deposited twice

    def test_rebalance_empty_is_noop(self):
        db = ShardedMessageDatabase(2)
        deposit(db, ATTRIBUTES[0])
        assert db.rebalance([]) == 0
        assert db.shard_count == 2


class TestOnlineRebalance:
    def test_retrieval_during_a_live_move(self):
        """ISSUE 7 regression: routing updates incrementally per moved
        record, so fetch/by_attribute stay complete mid-drain."""
        db = ShardedMessageDatabase(4)
        records = [
            deposit(db, attribute, index)
            for index, attribute in enumerate(ATTRIBUTES * 2)
        ]
        before = {r.message_id: r.to_bytes() for r in records}
        with db.worker_lease(2):
            drain = db.rebalance_online([None, None])
            steps = 0
            for steps in drain:
                assert db.rebalancing
                # Every record stays fetchable by id at every step...
                for record in records:
                    assert (
                        db.fetch(record.message_id).to_bytes()
                        == before[record.message_id]
                    )
                # ...and attribute reads merge both owners, no gaps,
                # no duplicates.
                seen = {
                    r.message_id
                    for a in ATTRIBUTES
                    for r in db.by_attribute(a)
                }
                assert seen == set(before)
                assert len(db.by_attributes(list(ATTRIBUTES))) == len(before)
        assert steps > 0  # the growth actually moved something
        assert not db.rebalancing
        assert db.shard_count == 6
        assert sum(db.shard_counts()) == len(before)

    def test_deposits_during_drain_route_by_new_ring(self):
        db = ShardedMessageDatabase(2)
        for index, attribute in enumerate(ATTRIBUTES):
            deposit(db, attribute, index)
        total = len(ATTRIBUTES)
        with db.worker_lease(1):
            drain = db.rebalance_online([None, None])
            for moves in drain:
                record = deposit(db, ATTRIBUTES[moves % len(ATTRIBUTES)], 100 + moves)
                total += 1
                # A mid-drain deposit lands directly on its final shard.
                assert db.fetch(record.message_id).to_bytes() == record.to_bytes()
        assert len(db) == total
        assert sum(db.shard_counts()) == total
        # Post-drain: single-ring reads see everything exactly once.
        assert len(db.by_attributes(list(ATTRIBUTES))) == total

    def test_abandoned_drain_keeps_reads_complete_until_finished(self):
        """A drain crashed mid-flight leaves dual-ring reads active;
        finish_rebalance() completes the move and retires them."""
        db = ShardedMessageDatabase(4)
        for index, attribute in enumerate(ATTRIBUTES * 2):
            deposit(db, attribute, index)
        total = len(ATTRIBUTES) * 2
        drain = db.rebalance_online([None, None])
        next(drain)  # one move, then the driver dies
        drain.close()
        assert db.rebalancing
        assert len(db.by_attributes(list(ATTRIBUTES))) == total
        recovered = db.finish_rebalance()
        assert recovered >= 0
        assert not db.rebalancing
        assert len(db.by_attributes(list(ATTRIBUTES))) == total
        assert db.finish_rebalance() == 0  # idempotent once clean

    def test_online_rebalance_allowed_under_lease_offline_refused(self):
        db = ShardedMessageDatabase(2)
        deposit(db, ATTRIBUTES[0])
        with db.worker_lease(1):
            with pytest.raises(StorageError):
                db.rebalance([None])
            for _ in db.rebalance_online([None]):
                pass
        assert db.shard_count == 3

    def test_concurrent_online_rebalance_refused(self):
        db = ShardedMessageDatabase(2)
        deposit(db, ATTRIBUTES[0])
        drain = db.rebalance_online([None, None])
        next(drain, None)
        if db.rebalancing:
            with pytest.raises(StorageError):
                next(db.rebalance_online([None]))
        drain.close()
        db.finish_rebalance()

    def test_replicated_online_rebalance_ships_moves_through_wal(self):
        db = ShardedMessageDatabase(2, replicas=2)
        for index, attribute in enumerate(ATTRIBUTES * 2):
            deposit(db, attribute, index)
        total = len(ATTRIBUTES) * 2
        with db.worker_lease(1):
            moved = 0
            for moved in db.rebalance_online([None, None]):
                assert len(db.by_attributes(list(ATTRIBUTES))) == total
        assert moved > 0
        assert sum(db.shard_counts()) == total
        # Every replica of every shard agrees with its leader.
        from repro.storage.replication import ReplicaSet

        for index in range(db.shard_count):
            shard = db.shard(index)
            assert isinstance(shard, ReplicaSet)
            shard.pump()
            leader_len = len(shard.leader.db)
            for replica in shard.replicas:
                assert len(replica.db) == leader_len

    def test_compaction_preserves_contents(self, tmp_path):
        stores = [
            LogStructuredStore(str(tmp_path / f"c-{i}.log")) for i in range(2)
        ]
        db = ShardedMessageDatabase(stores)
        records = [deposit(db, a, i) for i, a in enumerate(ATTRIBUTES[:8])]
        db.delete(records[0].message_id)
        db.compact()
        for record in records[1:]:
            assert db.fetch(record.message_id).to_bytes() == record.to_bytes()
        assert len(db) == 7
        db.close()

    def test_registry_counters_and_gauges(self):
        registry = MetricsRegistry(SimClock())
        db = ShardedMessageDatabase(3, registry=registry)
        for index, attribute in enumerate(ATTRIBUTES[:10]):
            deposit(db, attribute, index)
        counters = registry.counter_values()
        per_shard = [
            counters[f"storage.shard.{i}.deposits"] for i in range(3)
        ]
        assert sum(per_shard) == 10
        snapshot = registry.snapshot()["gauges"]
        assert [snapshot[f"storage.shard.{i}.messages"] for i in range(3)] == (
            db.shard_counts()
        )

    def test_rejects_zero_shards(self):
        with pytest.raises(StorageError):
            ShardedMessageDatabase(0)


class TestWorkerLease:
    """Pins for offline-only ``rebalance()`` under live workers.

    Rebalance rewrites the routing ring while moving records between
    shards; a concurrently-running worker could deposit into a shard
    that is mid-migration.  The lease makes this impossible to do by
    accident: the runtime holds one lease per worker, and rebalance
    refuses outright while any lease is live.
    """

    def test_rebalance_refused_while_any_worker_is_live(self):
        db = ShardedMessageDatabase(4)
        deposit(db, ATTRIBUTES[0])
        db.acquire_worker()
        try:
            with pytest.raises(StorageError, match="offline-only"):
                db.rebalance([None])
        finally:
            db.release_worker()
        # Fully drained: rebalance is allowed again.
        assert db.shard_count == 4
        db.rebalance([None])
        assert db.shard_count == 5

    def test_refusal_reports_live_worker_count(self):
        db = ShardedMessageDatabase(2)
        with db.worker_lease(3):
            with pytest.raises(StorageError, match="3 live worker"):
                db.rebalance([None])

    def test_refusal_happens_even_for_empty_rebalance(self):
        # The guard fires before the empty-new_stores fast path: an
        # "offline" no-op is still an online-mutation hazard.
        db = ShardedMessageDatabase(2)
        with db.worker_lease():
            with pytest.raises(StorageError, match="offline-only"):
                db.rebalance([])
        assert db.rebalance([]) == 0

    def test_lease_counts_nest_and_release(self):
        db = ShardedMessageDatabase(2)
        assert db.live_workers == 0
        with db.worker_lease(2):
            assert db.live_workers == 2
            with db.worker_lease():
                assert db.live_workers == 3
            assert db.live_workers == 2
        assert db.live_workers == 0

    def test_release_without_acquire_is_an_error(self):
        db = ShardedMessageDatabase(2)
        with pytest.raises(StorageError, match="release"):
            db.release_worker()

    def test_lease_released_when_body_raises(self):
        db = ShardedMessageDatabase(2)
        with pytest.raises(ValueError):
            with db.worker_lease(2):
                raise ValueError("worker died")
        assert db.live_workers == 0
        assert db.rebalance([]) == 0
