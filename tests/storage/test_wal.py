"""The per-shard write-ahead log (repro.storage.wal)."""

import pytest

from repro.errors import CorruptRecordError, DecodeError, StorageError
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimClock
from repro.storage.wal import (
    OP_DELETE,
    OP_STORE,
    WAL_RECORD_TAG,
    WalRecord,
    WriteAheadLog,
)


class TestWalRecord:
    def test_round_trip(self):
        record = WalRecord(lsn=7, op=OP_STORE, payload=b"message-bytes")
        assert WalRecord.from_bytes(record.to_bytes()) == record

    def test_delete_round_trip(self):
        record = WalRecord(lsn=1, op=OP_DELETE, payload=(42).to_bytes(8, "big"))
        decoded = WalRecord.from_bytes(record.to_bytes())
        assert decoded.op == OP_DELETE
        assert int.from_bytes(decoded.payload, "big") == 42

    def test_frame_opens_with_tag(self):
        assert WalRecord(1, OP_STORE, b"x").to_bytes()[0] == WAL_RECORD_TAG

    def test_bad_tag_rejected(self):
        frame = bytearray(WalRecord(1, OP_STORE, b"x").to_bytes())
        frame[0] ^= 0xFF
        with pytest.raises(DecodeError):
            WalRecord.from_bytes(bytes(frame))

    def test_bit_flip_in_body_is_loud(self):
        frame = bytearray(WalRecord(3, OP_STORE, b"payload-bytes").to_bytes())
        frame[-1] ^= 0x01
        with pytest.raises(CorruptRecordError):
            WalRecord.from_bytes(bytes(frame))

    def test_truncation_is_loud(self):
        frame = WalRecord(3, OP_STORE, b"payload-bytes").to_bytes()
        for cut in (1, len(frame) // 2, len(frame) - 1):
            with pytest.raises((DecodeError, CorruptRecordError)):
                WalRecord.from_bytes(frame[:cut])

    def test_trailing_garbage_rejected(self):
        frame = WalRecord(1, OP_STORE, b"x").to_bytes()
        with pytest.raises((DecodeError, CorruptRecordError)):
            WalRecord.from_bytes(frame + b"\x00")

    def test_unknown_opcode_rejected(self):
        rogue = WalRecord(1, 9, b"x")
        with pytest.raises(DecodeError):
            WalRecord.from_bytes(rogue.to_bytes())


class TestWriteAheadLog:
    def test_lsns_monotone_from_one(self):
        wal = WriteAheadLog()
        lsns = [wal.append(OP_STORE, bytes([i])).lsn for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5

    def test_since_is_the_shipping_window(self):
        wal = WriteAheadLog()
        for i in range(6):
            wal.append(OP_STORE, bytes([i]))
        assert [r.lsn for r in wal.since(0)] == [1, 2, 3, 4, 5, 6]
        assert [r.lsn for r in wal.since(4)] == [5, 6]
        assert wal.since(6) == []

    def test_truncate_reclaims_but_keeps_lsns(self):
        wal = WriteAheadLog()
        for i in range(6):
            wal.append(OP_STORE, bytes([i]))
        assert wal.truncate_until(4) == 4
        assert wal.base_lsn == 4
        assert len(wal) == 2
        assert [r.lsn for r in wal.since(4)] == [5, 6]
        # The next append continues the sequence, never reuses LSNs.
        assert wal.append(OP_DELETE, b"\0" * 8).lsn == 7

    def test_since_below_truncation_demands_reseed(self):
        wal = WriteAheadLog()
        for i in range(4):
            wal.append(OP_STORE, bytes([i]))
        wal.truncate_until(2)
        with pytest.raises(StorageError):
            wal.since(1)

    def test_truncate_never_drops_past_tail(self):
        wal = WriteAheadLog()
        wal.append(OP_STORE, b"x")
        assert wal.truncate_until(99) == 1
        assert wal.base_lsn == 1
        assert wal.truncate_until(99) == 0

    def test_unknown_opcode_refused_at_append(self):
        wal = WriteAheadLog()
        with pytest.raises(StorageError):
            wal.append(7, b"x")

    def test_metrics_count_appends_and_bytes(self):
        registry = MetricsRegistry(SimClock())
        wal = WriteAheadLog(registry, prefix="storage.wal.shard.0")
        wal.append(OP_STORE, b"four")
        wal.append(OP_STORE, b"bytes!")
        counters = registry.counter_values()
        assert counters["storage.wal.shard.0.appends"] == 2
        assert counters["storage.wal.shard.0.bytes"] == 10
