"""Message DB, Policy DB (Table 1), User DB, device key store, indexes."""

import pytest

from repro.errors import (
    AuthenticationError,
    DuplicateKeyError,
    UnknownAttributeError,
    UnknownIdentityError,
)
from repro.mathlib.rand import HmacDrbg
from repro.storage import (
    DeviceKeyStore,
    HashIndex,
    LogStructuredStore,
    MessageDatabase,
    PolicyDatabase,
    SortedIndex,
    UserDatabase,
)


class TestHashIndex:
    def test_add_lookup_remove(self):
        index = HashIndex()
        index.add("attr-a", 1)
        index.add("attr-a", 2)
        index.add("attr-b", 3)
        assert index.lookup("attr-a") == {1, 2}
        index.remove("attr-a", 1)
        assert index.lookup("attr-a") == {2}
        index.remove("attr-a", 2)
        assert index.lookup("attr-a") == set()
        assert "attr-a" not in index

    def test_lookup_returns_copy(self):
        index = HashIndex()
        index.add("a", 1)
        index.lookup("a").add(99)
        assert index.lookup("a") == {1}

    def test_remove_missing_is_noop(self):
        index = HashIndex()
        index.remove("ghost", 1)  # no exception

    def test_values(self):
        index = HashIndex()
        index.add("x", 1)
        index.add("y", 2)
        assert sorted(index.values()) == ["x", "y"]


class TestSortedIndex:
    def test_range_inclusive(self):
        index = SortedIndex()
        for timestamp, key in [(10, "a"), (20, "b"), (30, "c"), (20, "d")]:
            index.add(timestamp, key)
        assert index.range(20, 20) == ["b", "d"]
        assert index.range(10, 30) == ["a", "b", "d", "c"]
        assert index.range(31, 99) == []

    def test_remove(self):
        index = SortedIndex()
        index.add(5, "x")
        index.add(5, "y")
        index.remove(5, "x")
        assert index.range(0, 10) == ["y"]
        index.remove(5, "zz")  # absent: no-op
        assert len(index) == 1

    def test_min_max(self):
        index = SortedIndex()
        assert index.min_value() is None and index.max_value() is None
        index.add(7, "a")
        index.add(3, "b")
        assert index.min_value() == 3 and index.max_value() == 7


class TestMessageDatabase:
    @pytest.fixture()
    def message_db(self):
        return MessageDatabase()

    def test_store_assigns_sequential_ids(self, message_db):
        first = message_db.store("dev", "A", b"n", b"ct", 100)
        second = message_db.store("dev", "A", b"n", b"ct", 200)
        assert (first.message_id, second.message_id) == (1, 2)

    def test_fetch_roundtrip(self, message_db):
        record = message_db.store("dev-9", "ELECTRIC-X", b"nonce", b"cipher", 123)
        fetched = message_db.fetch(record.message_id)
        assert fetched == record

    def test_by_attribute_ordering(self, message_db):
        message_db.store("d", "A", b"", b"1", 10)
        message_db.store("d", "B", b"", b"2", 20)
        message_db.store("d", "A", b"", b"3", 30)
        ids = [r.message_id for r in message_db.by_attribute("A")]
        assert ids == [1, 3]

    def test_by_attributes_union(self, message_db):
        message_db.store("d", "A", b"", b"1", 10)
        message_db.store("d", "B", b"", b"2", 20)
        message_db.store("d", "C", b"", b"3", 30)
        records = message_db.by_attributes(["A", "C"])
        assert [r.message_id for r in records] == [1, 3]

    def test_by_time_range(self, message_db):
        for timestamp in (100, 200, 300):
            message_db.store("d", "A", b"", b"x", timestamp)
        assert [r.deposited_at_us for r in message_db.by_time_range(150, 300)] == [
            200,
            300,
        ]

    def test_delete_updates_indexes(self, message_db):
        record = message_db.store("d", "A", b"", b"x", 100)
        message_db.delete(record.message_id)
        assert message_db.by_attribute("A") == []
        assert message_db.by_time_range(0, 1000) == []
        assert len(message_db) == 0

    def test_attributes_listing(self, message_db):
        message_db.store("d", "B", b"", b"x", 1)
        message_db.store("d", "A", b"", b"x", 2)
        assert message_db.attributes() == ["A", "B"]

    def test_index_rebuild_from_persistent_store(self, tmp_path):
        path = str(tmp_path / "md.log")
        database = MessageDatabase(LogStructuredStore(path))
        database.store("d", "ELECTRIC", b"n1", b"ct1", 100)
        database.store("d", "WATER", b"n2", b"ct2", 200)
        database.close()
        recovered = MessageDatabase(LogStructuredStore(path))
        assert [r.ciphertext for r in recovered.by_attribute("WATER")] == [b"ct2"]
        # New ids continue after the recovered maximum.
        record = recovered.store("d", "GAS", b"n3", b"ct3", 300)
        assert record.message_id == 3
        recovered.close()


class TestPolicyDatabase:
    def test_reproduces_paper_table_1(self):
        """Build exactly the paper's Table 1 and read it back row by row."""
        policy_db = PolicyDatabase()
        policy_db.grant("IDRC1", "A1")
        policy_db.grant("IDRC1", "A2")
        policy_db.grant("IDRC2", "A1")
        policy_db.grant("IDRC3", "A3")
        policy_db.grant("IDRC4", "A4")
        table = [
            (row.identity, row.attribute, row.attribute_id)
            for row in policy_db.table()
        ]
        assert table == [
            ("IDRC1", "A1", 1),
            ("IDRC1", "A2", 2),
            ("IDRC2", "A1", 3),
            ("IDRC3", "A3", 4),
            ("IDRC4", "A4", 5),
        ]

    def test_same_attribute_distinct_aids_per_identity(self):
        """IDRC1 and IDRC2 both hold A1 under *different* AIDs (unlinkable)."""
        policy_db = PolicyDatabase()
        first = policy_db.grant("IDRC1", "A1")
        second = policy_db.grant("IDRC2", "A1")
        assert first != second

    def test_grant_idempotent(self):
        policy_db = PolicyDatabase()
        assert policy_db.grant("rc", "A") == policy_db.grant("rc", "A")
        assert len(policy_db) == 1

    def test_attributes_for(self):
        policy_db = PolicyDatabase()
        aid = policy_db.grant("rc", "ELECTRIC")
        assert policy_db.attributes_for("rc") == {aid: "ELECTRIC"}

    def test_unknown_identity_raises(self):
        with pytest.raises(UnknownIdentityError):
            PolicyDatabase().attributes_for("ghost")

    def test_revoke(self):
        policy_db = PolicyDatabase()
        policy_db.grant("rc", "A")
        policy_db.grant("rc", "B")
        policy_db.revoke("rc", "A")
        assert list(policy_db.attributes_for("rc").values()) == ["B"]
        assert not policy_db.is_authorized("rc", "A")

    def test_revoke_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            PolicyDatabase().revoke("rc", "A")

    def test_revoke_identity_removes_everything(self):
        policy_db = PolicyDatabase()
        policy_db.grant("rc", "A")
        policy_db.grant("rc", "B")
        assert policy_db.revoke_identity("rc") == 2
        with pytest.raises(UnknownIdentityError):
            policy_db.attributes_for("rc")

    def test_regrant_after_revoke_gets_fresh_aid(self):
        policy_db = PolicyDatabase()
        original = policy_db.grant("rc", "A")
        policy_db.revoke("rc", "A")
        fresh = policy_db.grant("rc", "A")
        assert fresh != original

    def test_identities_for(self):
        policy_db = PolicyDatabase()
        policy_db.grant("rc-b", "A")
        policy_db.grant("rc-a", "A")
        policy_db.grant("rc-c", "B")
        assert policy_db.identities_for("A") == ["rc-a", "rc-b"]

    def test_rebuild_from_persistent_store(self, tmp_path):
        path = str(tmp_path / "pd.log")
        policy_db = PolicyDatabase(LogStructuredStore(path))
        aid = policy_db.grant("rc", "A")
        policy_db.close()
        recovered = PolicyDatabase(LogStructuredStore(path))
        assert recovered.attributes_for("rc") == {aid: "A"}
        assert recovered.grant("rc2", "B") == aid + 1
        recovered.close()


class TestUserDatabase:
    def test_register_and_verify(self):
        user_db = UserDatabase()
        user_db.register("rc-1", "hunter2", display_name="C-Services")
        user_db.verify_password("rc-1", "hunter2")
        assert user_db.display_name("rc-1") == "C-Services"

    def test_wrong_password_raises(self):
        user_db = UserDatabase()
        user_db.register("rc-1", "correct")
        with pytest.raises(AuthenticationError):
            user_db.verify_password("rc-1", "incorrect")

    def test_duplicate_registration_raises(self):
        user_db = UserDatabase()
        user_db.register("rc", "pw")
        with pytest.raises(DuplicateKeyError):
            user_db.register("rc", "other")

    def test_unknown_identity_raises(self):
        user_db = UserDatabase()
        with pytest.raises(UnknownIdentityError):
            user_db.password_key("ghost")
        with pytest.raises(UnknownIdentityError):
            user_db.unregister("ghost")

    def test_password_key_is_hash(self):
        user_db = UserDatabase()
        user_db.register("rc", "pw")
        assert user_db.password_key("rc") == UserDatabase.hash_password("pw")

    def test_unregister(self):
        user_db = UserDatabase()
        user_db.register("rc", "pw")
        user_db.unregister("rc")
        assert not user_db.exists("rc")

    def test_identities(self):
        user_db = UserDatabase()
        user_db.register("b", "x")
        user_db.register("a", "y")
        assert user_db.identities() == ["a", "b"]


class TestDeviceKeyStore:
    def test_register_returns_key_both_sides_share(self):
        keystore = DeviceKeyStore(rng=HmacDrbg(b"ks"))
        key = keystore.register("meter-1")
        assert keystore.shared_key("meter-1") == key
        assert len(key) == DeviceKeyStore.KEY_LENGTH

    def test_duplicate_raises(self):
        keystore = DeviceKeyStore(rng=HmacDrbg(b"ks"))
        keystore.register("meter-1")
        with pytest.raises(DuplicateKeyError):
            keystore.register("meter-1")

    def test_revoke(self):
        keystore = DeviceKeyStore(rng=HmacDrbg(b"ks"))
        keystore.register("meter-1")
        keystore.revoke("meter-1")
        with pytest.raises(UnknownIdentityError):
            keystore.shared_key("meter-1")

    def test_unknown_device(self):
        keystore = DeviceKeyStore()
        with pytest.raises(UnknownIdentityError):
            keystore.shared_key("ghost")
        with pytest.raises(UnknownIdentityError):
            keystore.revoke("ghost")

    def test_distinct_keys_per_device(self):
        keystore = DeviceKeyStore(rng=HmacDrbg(b"ks"))
        assert keystore.register("a") != keystore.register("b")
        assert keystore.device_ids() == ["a", "b"]
