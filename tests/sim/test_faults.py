"""The deterministic fault-injection engine and its network integration."""

import pytest

from repro.errors import (
    NetworkError,
    RequestDroppedError,
    ResponseDroppedError,
)
from repro.mathlib.rand import HmacDrbg
from repro.sim import FaultPlan, FaultSpec, Network, SimClock


def echo_network(clock=None):
    network = Network(clock=clock)
    network.register("echo", lambda payload: b"echo:" + payload)
    return network


class TestFaultPlanDecisions:
    def test_clean_plan_touches_nothing(self):
        plan = FaultPlan(HmacDrbg(b"s"))
        decision = plan.decide("a", "b", 100)
        assert decision.faults() == 0
        assert plan.total_injected() == 0

    def test_same_seed_same_decisions(self):
        spec = FaultSpec(drop=0.3, duplicate=0.3, corrupt=0.3, delay=0.3)
        first = FaultPlan(HmacDrbg(b"seed"), default=spec)
        second = FaultPlan(HmacDrbg(b"seed"), default=spec)
        decisions_a = [first.decide("a", "b", 64) for _ in range(200)]
        decisions_b = [second.decide("a", "b", 64) for _ in range(200)]
        assert decisions_a == decisions_b
        assert first.counters == second.counters

    def test_probabilities_roughly_respected(self):
        plan = FaultPlan(HmacDrbg(b"p"), default=FaultSpec(drop=0.25))
        drops = sum(plan.decide("a", "b", 8).drop for _ in range(2000))
        assert 350 < drops < 650  # ~500 expected

    def test_per_link_override(self):
        plan = FaultPlan(HmacDrbg(b"l"), default=FaultSpec())
        plan.set_link("a", "b", FaultSpec(drop=1.0))
        assert plan.decide("a", "b", 8).drop
        assert not plan.decide("b", "a", 8).drop  # response dir clean
        assert not plan.decide("a", "c", 8).drop

    def test_endpoint_wildcard_override(self):
        plan = FaultPlan(HmacDrbg(b"w"))
        plan.set_endpoint("svc", FaultSpec(corrupt=1.0))
        assert plan.decide("anyone", "svc", 8).corrupt is not None
        assert plan.decide("svc", "anyone", 8).corrupt is None

    def test_partition_and_heal(self):
        plan = FaultPlan(HmacDrbg(b"part"))
        plan.partition("a", "b")
        assert plan.decide("a", "b", 8).partitioned
        assert plan.decide("b", "a", 8).partitioned
        assert not plan.decide("a", "c", 8).drop
        plan.heal("a", "b")
        assert not plan.decide("a", "b", 8).drop
        assert plan.counters["partition_drops"] == 2

    def test_corruption_location_within_payload(self):
        plan = FaultPlan(HmacDrbg(b"c"), default=FaultSpec(corrupt=1.0))
        for _ in range(50):
            index, mask = plan.decide("a", "b", 16).corrupt
            assert 0 <= index < 16
            assert mask in {1 << b for b in range(8)}


class TestNetworkFaultIntegration:
    def test_request_drop_surfaces_as_request_dropped(self):
        network = echo_network()
        plan = FaultPlan(HmacDrbg(b"d"))
        plan.set_link("c", "echo", FaultSpec(drop=1.0))
        network.install_fault_plan(plan)
        with pytest.raises(RequestDroppedError):
            network.send("c", "echo", b"x")
        stats = network.endpoint_stats()["echo"]
        assert stats.fault_drops == 1
        assert stats.requests_served == 0  # handler never ran

    def test_response_drop_after_handler_ran(self):
        """The critical case: the service processed the request but the
        sender never learns — must be distinguishable from a lost request."""
        network = echo_network()
        served = []
        network.unregister("echo")
        network.register("echo", lambda p: (served.append(p), b"ok")[1])
        plan = FaultPlan(HmacDrbg(b"r"))
        plan.set_link("echo", "c", FaultSpec(drop=1.0))  # response dir only
        network.install_fault_plan(plan)
        with pytest.raises(ResponseDroppedError):
            network.send("c", "echo", b"x")
        assert served == [b"x"]  # handler DID run
        assert network.endpoint_stats()["echo"].requests_served == 1

    def test_duplicate_delivers_twice(self):
        network = Network()
        hits = []
        network.register("svc", lambda p: (hits.append(p), b"ok")[1])
        plan = FaultPlan(HmacDrbg(b"dup"))
        plan.set_link("c", "svc", FaultSpec(duplicate=1.0))
        network.install_fault_plan(plan)
        assert network.send("c", "svc", b"x") == b"ok"
        assert hits == [b"x", b"x"]
        assert network.endpoint_stats()["svc"].fault_duplicates == 1

    def test_corrupt_flips_one_bit(self):
        network = echo_network()
        plan = FaultPlan(HmacDrbg(b"cor"))
        plan.set_link("c", "echo", FaultSpec(corrupt=1.0))
        network.install_fault_plan(plan)
        response = network.send("c", "echo", b"\x00\x00\x00\x00")
        corrupted = response[len(b"echo:"):]
        assert corrupted != b"\x00\x00\x00\x00"
        assert sum(bin(b).count("1") for b in corrupted) == 1
        assert network.endpoint_stats()["echo"].fault_corruptions == 1

    def test_delay_advances_sim_clock(self):
        clock = SimClock(start_us=0)
        network = echo_network(clock)
        plan = FaultPlan(
            HmacDrbg(b"slow"),
            default=FaultSpec(delay=1.0, min_delay_us=100, max_delay_us=200),
        )
        network.install_fault_plan(plan)
        network.send("c", "echo", b"x")
        # One delay per direction, each in [100, 200].
        assert 200 <= clock.now_us() <= 400
        stats = network.endpoint_stats()["echo"]
        assert stats.fault_delays == 2
        assert stats.fault_delay_us == clock.now_us()

    def test_partition_blocks_both_directions(self):
        network = echo_network()
        network.register("other", lambda p: p)
        plan = FaultPlan(HmacDrbg(b"net-split"))
        plan.partition("c", "echo")
        network.install_fault_plan(plan)
        with pytest.raises(NetworkError):
            network.send("c", "echo", b"x")
        assert network.send("c", "other", b"x") == b"x"
        plan.heal_all()
        assert network.send("c", "echo", b"x") == b"echo:x"

    def test_response_interceptor_can_drop_and_modify(self):
        network = echo_network()
        network.add_response_interceptor(lambda dst, src, resp: resp.upper())
        assert network.send("c", "echo", b"abc") == b"ECHO:ABC"
        network.clear_interceptors()
        network.add_response_interceptor(lambda dst, src, resp: None)
        with pytest.raises(ResponseDroppedError):
            network.send("c", "echo", b"abc")

    def test_identical_seeds_identical_traffic(self):
        spec = FaultSpec(drop=0.2, duplicate=0.2, corrupt=0.2)

        def run(seed):
            network = echo_network()
            network.install_fault_plan(FaultPlan(HmacDrbg(seed), default=spec))
            outcomes = []
            for i in range(100):
                try:
                    outcomes.append(network.send("c", "echo", bytes([i])))
                except NetworkError as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes, network.messages_sent

        assert run(b"same") == run(b"same")
        assert run(b"same") != run(b"different")
