"""The TCP transport: framing, persistence, and the full protocol over
real localhost sockets."""

import socket

import pytest

from repro.errors import NetworkError
from repro.sim.sockets import (
    FrameServer,
    SocketChannel,
    serve_deployment,
)


class TestFraming:
    def test_echo_roundtrip(self):
        with FrameServer(lambda payload: b"echo:" + payload) as server:
            with SocketChannel(*server.address) as channel:
                assert channel.request(b"hello") == b"echo:hello"

    def test_multiple_frames_one_connection(self):
        with FrameServer(lambda payload: payload[::-1]) as server:
            with SocketChannel(*server.address) as channel:
                for message in (b"a", b"bb", b"ccc" * 100):
                    assert channel.request(message) == message[::-1]

    def test_empty_frame(self):
        with FrameServer(lambda payload: b"got:" + payload) as server:
            with SocketChannel(*server.address) as channel:
                assert channel.request(b"") == b"got:"

    def test_large_frame(self):
        blob = bytes(range(256)) * 4096  # 1 MiB
        with FrameServer(lambda payload: payload) as server:
            with SocketChannel(*server.address) as channel:
                assert channel.request(blob) == blob

    def test_handler_exception_reported_not_fatal(self):
        def exploding(payload):
            raise ValueError("boom")

        with FrameServer(exploding) as server:
            with SocketChannel(*server.address) as channel:
                assert channel.request(b"x").startswith(b"ERR:InternalError")
                # The server keeps serving after a handler error.
                assert channel.request(b"y").startswith(b"ERR:InternalError")

    def test_reconnect_after_server_side_close(self):
        """A channel survives the server dropping the connection."""
        with FrameServer(lambda payload: payload) as server:
            channel = SocketChannel(*server.address)
            assert channel.request(b"first") == b"first"
            channel._connection.close()  # simulate broken connection
            assert channel.request(b"second") == b"second"
            channel.close()

    def test_connection_refused_raises(self):
        # Find an unused port by binding and closing.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, port = probe.getsockname()
        probe.close()
        channel = SocketChannel("127.0.0.1", port, timeout_s=0.5)
        with pytest.raises((NetworkError, OSError)):
            channel.request(b"x")


class TestProtocolOverTcp:
    def test_full_protocol_over_real_sockets(self, deployment):
        """The complete deposit/retrieve/PKG flow over localhost TCP —
        the clients are byte-compatible with the in-process network."""
        device = deployment.new_smart_device("tcp-meter")
        client = deployment.new_receiving_client("tcp-rc", "pw", attributes=["T"])
        with serve_deployment(deployment) as served:
            sd_channel = served.channel("mws-sd")
            response = device.deposit(sd_channel, "T", b"over tcp")
            assert response.accepted
            messages = client.retrieve_and_decrypt(
                served.channel("mws-client"), served.channel("pkg")
            )
            assert [m.plaintext for m in messages] == [b"over tcp"]
            sd_channel.close()

    def test_addresses_are_distinct(self, deployment):
        with serve_deployment(deployment) as served:
            addresses = served.addresses()
            assert len({port for _, port in addresses.values()}) == 4

    def test_batch_deposit_over_tcp(self, deployment):
        device = deployment.new_smart_device("tcp-batch-meter")
        client = deployment.new_receiving_client("tcp-rc2", "pw", attributes=["T"])
        with serve_deployment(deployment) as served:
            response = device.deposit_batch(
                served.channel("mws-sd-batch"),
                [("T", b"batched-1"), ("T", b"batched-2")],
            )
            assert response.accepted and len(response.message_ids) == 2
            messages = client.retrieve_and_decrypt(
                served.channel("mws-client"), served.channel("pkg")
            )
            assert {m.plaintext for m in messages} == {b"batched-1", b"batched-2"}
