"""Simulated clock, network (with fault injection) and meter workload."""

import pytest

from repro.errors import ChannelClosedError, NetworkError
from repro.mathlib.rand import HmacDrbg
from repro.sim import (
    MeterKind,
    Network,
    SimClock,
    SmartMeterFleet,
    TamperInjector,
    WallClock,
    WorkloadConfig,
)


class TestClocks:
    def test_sim_clock_manual_control(self):
        clock = SimClock(start_us=100)
        assert clock.now_us() == 100
        clock.advance(50)
        assert clock.now_us() == 150
        clock.set(99)
        assert clock.now_us() == 99

    def test_sim_clock_auto_tick(self):
        clock = SimClock(start_us=0, tick_us=7)
        assert clock.now_us() == 0
        assert clock.now_us() == 7
        assert clock.now_us() == 14

    def test_sim_clock_negative_advance(self):
        clock = SimClock(start_us=1000)
        clock.advance(-500)
        assert clock.now_us() == 500

    def test_wall_clock_monotone_enough(self):
        clock = WallClock()
        assert clock.now_us() <= clock.now_us()


class TestNetwork:
    def _echo_network(self):
        network = Network()
        network.register("echo", lambda payload: b"echo:" + payload)
        return network

    def test_request_response(self):
        network = self._echo_network()
        assert network.send("client", "echo", b"hi") == b"echo:hi"

    def test_unknown_endpoint_raises(self):
        with pytest.raises(NetworkError):
            self._echo_network().send("client", "ghost", b"x")

    def test_duplicate_registration_raises(self):
        network = self._echo_network()
        with pytest.raises(NetworkError):
            network.register("echo", lambda payload: payload)

    def test_unregister(self):
        network = self._echo_network()
        network.unregister("echo")
        with pytest.raises(NetworkError):
            network.send("c", "echo", b"x")

    def test_channel_convenience(self):
        channel = self._echo_network().channel("client", "echo")
        assert channel.request(b"ping") == b"echo:ping"

    def test_closed_channel_raises(self):
        channel = self._echo_network().channel("client", "echo")
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.request(b"x")

    def test_stats_accumulate(self):
        network = self._echo_network()
        network.send("a", "echo", b"12345")
        network.send("b", "echo", b"6")
        assert network.messages_sent == 2
        assert network.bytes_sent == 6
        stats = network.endpoint_stats()["echo"]
        assert stats.requests_served == 2
        assert stats.bytes_in == 6 and stats.bytes_out == 16
        assert stats.handler_errors == 0
        # Legacy positional access is preserved.
        assert stats[0] == 2

    def test_handler_error_not_counted_as_served(self):
        network = Network()

        def exploding(payload: bytes) -> bytes:
            raise ValueError("boom")

        network.register("svc", exploding)
        with pytest.raises(ValueError):
            network.send("c", "svc", b"x")
        stats = network.endpoint_stats()["svc"]
        assert stats.requests_served == 0
        assert stats.bytes_in == 0
        assert stats.handler_errors == 1
        assert network.handler_errors == 1

    def test_latency_advances_sim_clock(self):
        clock = SimClock(start_us=0)
        network = Network(clock=clock, latency_us=250)
        network.register("svc", lambda payload: payload)
        network.send("c", "svc", b"x")
        assert clock.now_us() == 250

    def test_interceptor_can_modify(self):
        network = self._echo_network()
        network.add_interceptor(lambda src, dst, payload: payload.upper())
        assert network.send("c", "echo", b"abc") == b"echo:ABC"

    def test_interceptor_can_drop(self):
        network = self._echo_network()
        network.add_interceptor(lambda src, dst, payload: None)
        with pytest.raises(NetworkError):
            network.send("c", "echo", b"x")
        network.clear_interceptors()
        assert network.send("c", "echo", b"x") == b"echo:x"

    def test_tamper_injector_flips_one_bit(self):
        network = self._echo_network()
        injector = TamperInjector(destination="echo")
        network.add_interceptor(injector)
        response = network.send("c", "echo", b"\x00\x00")
        assert response != b"echo:\x00\x00"
        assert injector.tampered == 1

    def test_tamper_injector_every_nth(self):
        network = self._echo_network()
        injector = TamperInjector(destination="echo", every_nth=2)
        network.add_interceptor(injector)
        first = network.send("c", "echo", b"\x00")
        second = network.send("c", "echo", b"\x00")
        assert first == b"echo:\x00"
        assert second != b"echo:\x00"

    def test_tamper_injector_other_destination_untouched(self):
        network = self._echo_network()
        network.register("other", lambda payload: payload)
        injector = TamperInjector(destination="other")
        network.add_interceptor(injector)
        assert network.send("c", "echo", b"\x00") == b"echo:\x00"


class TestWorkload:
    def test_fleet_size(self):
        fleet = SmartMeterFleet(WorkloadConfig(meters_per_kind=3))
        assert len(fleet.device_ids()) == 9

    def test_deterministic_readings(self):
        first = [r.value for r in SmartMeterFleet().readings("ELECTRIC-GLENBROOK-000", 10)]
        second = [r.value for r in SmartMeterFleet().readings("ELECTRIC-GLENBROOK-000", 10)]
        assert first == second

    def test_devices_have_independent_streams(self):
        fleet = SmartMeterFleet()
        a = [r.value for r in fleet.readings("ELECTRIC-GLENBROOK-000", 5)]
        b = [r.value for r in fleet.readings("ELECTRIC-GLENBROOK-001", 5)]
        assert a != b

    def test_attribute_format_matches_paper(self):
        fleet = SmartMeterFleet()
        reading = next(iter(fleet.readings("WATER-GLENBROOK-002", 1)))
        assert reading.attribute() == "WATER-GLENBROOK-SV-CA"
        assert fleet.attribute_for(MeterKind.WATER) == "WATER-GLENBROOK-SV-CA"

    def test_readings_monotone_timestamps(self):
        fleet = SmartMeterFleet()
        readings = list(fleet.readings("GAS-GLENBROOK-000", 20))
        timestamps = [r.timestamp_us for r in readings]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)

    def test_values_nonnegative_and_plausible(self):
        fleet = SmartMeterFleet()
        for device_id in fleet.device_ids():
            for reading in fleet.readings(device_id, 10):
                assert reading.value >= 0
                assert reading.value < 100  # sane magnitude for all kinds

    def test_payload_contains_reading_fields(self):
        fleet = SmartMeterFleet()
        reading = next(iter(fleet.readings("ELECTRIC-GLENBROOK-000", 1)))
        payload = reading.payload()
        assert b"ELECTRIC" in payload and b"kWh" in payload

    def test_round_of_readings_covers_fleet(self):
        fleet = SmartMeterFleet(WorkloadConfig(meters_per_kind=2))
        round_readings = list(fleet.round_of_readings())
        assert len(round_readings) == 6
        assert {r.device_id for r in round_readings} == set(fleet.device_ids())

    def test_kind_of(self):
        fleet = SmartMeterFleet()
        assert fleet.kind_of("GAS-GLENBROOK-001") is MeterKind.GAS

    def test_meter_kind_units(self):
        assert MeterKind.ELECTRIC.unit == "kWh"
        assert MeterKind.WATER.unit == "L"
        assert MeterKind.GAS.unit == "m3"
