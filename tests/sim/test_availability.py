"""The availability bench harness (repro.sim.availability)."""

import dataclasses
import json

from repro.sim.availability import (
    FAULT_PLANS,
    AvailabilityConfig,
    _measure_rebalance_latency,
    _run_plan,
    run_availability,
)

#: One tiny config shared by the suite; every knob shrunk to keep the
#: full battery (7 plans x 2 runs each) affordable in tier-1.
SMALL = AvailabilityConfig(
    devices=2,
    batch_size=3,
    latency_samples=60,
)


class TestRunAvailability:
    def test_battery_conserves_and_reports(self):
        dump = run_availability(SMALL)
        assert dump["bench"] == "availability"
        assert len(dump["fault_plans"]) == len(FAULT_PLANS)
        for row in dump["fault_plans"]:
            assert row["ok"], row
            assert row["accepted"] == 6
            assert row["retrieved"] == 6
        summary = dump["summary"]
        assert summary["ok_fraction"] == 1.0
        assert summary["conserved"] == len(FAULT_PLANS)

    def test_fault_plans_actually_inject(self):
        dump = run_availability(SMALL)
        rows = {row["plan"]: row for row in dump["fault_plans"]}
        assert rows["leader-kills"]["failovers"] > 0
        assert rows["follower-lag"]["follower_lags"] > 0
        assert rows["online-rebalance"]["rebalance_moves"] > 0
        assert rows["mid-rebalance-crash"]["rebalance_moves"] > 0
        assert rows["clean"]["failovers"] == 0
        assert rows["clean"]["crashes"] == 0

    def test_latency_section_shape(self):
        latency = _measure_rebalance_latency(SMALL)
        assert latency["samples"] == 60
        assert latency["steady_p99_ms"] > 0
        assert latency["rebalance_p99_ms"] > 0
        assert latency["p99_ratio"] > 0

    def test_sanitize_plan_runs_clean_and_exports_counters(self):
        # One plan under the registry-backed sanitizer (the `--sanitize`
        # CLI path): conservation holds and the schema-v7 counters land
        # in the obs dump.
        config = dataclasses.replace(SMALL, sanitize=True)
        result, dump, _counters = _run_plan(config, "clean", {}, {})
        assert result.conservation_ok()
        counters = json.loads(dump)["metrics"]["counters"]
        assert counters["sim.sanitizer.checks"] > 0
        assert counters["sim.sanitizer.violations"] == 0
        assert counters["sim.sanitizer.tagged"] > 0
