"""The revocation-churn battery and its lifecycle safety property."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.revocation import (
    CHURN_PLANS,
    RevocationConfig,
    run_revocation,
)
from repro.sim import revocation as revocation_sim

#: Small-but-honest battery config: every plan still injects its faults,
#: every schedule entry still fires.
SMALL = RevocationConfig(devices=2, batch_size=3)


class TestRevocationBattery:
    def test_battery_is_green_at_small_scale(self):
        report = run_revocation(SMALL)
        rows = {row["plan"]: row for row in report["plans"]}
        assert set(rows) == {name for name, _, _ in CHURN_PLANS}
        assert report["summary"]["ok_fraction"] == 1.0
        assert report["summary"]["revoked_blocked_fraction"] == 1.0
        for name, row in rows.items():
            assert row["ok"], name
            assert row["deterministic"], name
            assert row["origin_conserved"], name
            # Three probes per plan: gatekeeper, MMS filter, PKG.
            assert row["revoked_attempts"] == row["revoked_blocked"] == 3, name
            assert row["final_epoch"] == 3, name

        # Faults actually inject at this scale (deterministic battery:
        # the leader-kill plan's kills land in the lag and mid-roll
        # plans' longer runs, so those carry the failover assertions).
        assert rows["crash-churn"]["crashes"] > 0
        assert rows["follower-lag-churn"]["failovers"] > 0
        assert rows["rebalance-churn"]["rebalance_moves"] > 0
        assert rows["mid-roll-crash"]["crashes"] > 0
        assert rows["mid-roll-crash"]["failovers"] > 0
        assert report["summary"]["reencrypt_moves_total"] > 0
        assert report["summary"]["epoch_rolls_total"] > 0


#: name -> (spec_kwargs, pool_kwargs), for Hypothesis to pick from.
_PLAN_INDEX = {name: (spec, pool) for name, spec, pool in CHURN_PLANS}


class TestLifecycleProperty:
    """Any seed x fault plan: no revoked RC decrypts post-revocation.

    The bench asserts this over the fixed battery; here Hypothesis
    varies the deployment seed and the fault plan together, so the
    property is exercised over fresh nonces, fresh schedules and fresh
    fault timings each example — including mid-epoch-roll crashes.
    """

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed_tag=st.integers(min_value=0, max_value=7),
        plan_name=st.sampled_from(
            ["leader-kill-churn", "crash-churn", "mid-roll-crash"]
        ),
    )
    def test_revoked_rc_never_decrypts_post_revocation(self, seed_tag, plan_name):
        config = RevocationConfig(
            devices=2,
            batch_size=3,
            seed=b"rev-prop-%d" % seed_tag,
        )
        spec_kwargs, pool_kwargs = _PLAN_INDEX[plan_name]

        clean_result, _, _, clean_origin, clean_verify = revocation_sim._run_plan(
            config, "clean-churn", {}, {}
        )
        result, _, _, origin, verification = revocation_sim._run_plan(
            config, plan_name, spec_kwargs, pool_kwargs
        )

        for verdict in (clean_verify, verification):
            assert verdict["blocked"] == verdict["attempts"] == 3
            assert verdict["post_accepted"]
            assert verdict["decrypted_ok"]
        assert clean_result.conservation_ok() and result.conservation_ok()
        # Re-encryption conserves the ciphertext multiset digest: the
        # origin digests are independent of which faults fired.
        assert origin == clean_origin
