"""Tests for the deterministic cooperative task scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.mathlib.rand import HmacDrbg
from repro.sim.clock import SimClock
from repro.sim.scheduler import DeterministicScheduler, TaskState


def _producer(log, name, count):
    for index in range(count):
        log.append(f"{name}:{index}")
        yield
    return count


class TestScheduling:
    def test_single_task_runs_to_completion(self):
        log = []
        scheduler = DeterministicScheduler(HmacDrbg(b"sched"))
        task = scheduler.spawn("a", _producer(log, "a", 3))
        scheduler.run()
        assert task.state == TaskState.DONE
        assert task.result == 3
        assert log == ["a:0", "a:1", "a:2"]

    def test_same_seed_same_interleaving(self):
        def interleaving(seed):
            log = []
            scheduler = DeterministicScheduler(HmacDrbg(seed))
            scheduler.spawn("a", _producer(log, "a", 5))
            scheduler.spawn("b", _producer(log, "b", 5))
            scheduler.spawn("c", _producer(log, "c", 5))
            scheduler.run()
            return log

        assert interleaving(b"seed-1") == interleaving(b"seed-1")

    def test_different_seeds_explore_different_interleavings(self):
        def interleaving(seed):
            log = []
            scheduler = DeterministicScheduler(HmacDrbg(seed))
            scheduler.spawn("a", _producer(log, "a", 8))
            scheduler.spawn("b", _producer(log, "b", 8))
            scheduler.run()
            return log

        logs = {tuple(interleaving(b"seed-%d" % index)) for index in range(6)}
        assert len(logs) > 1

    def test_interleaving_actually_mixes_tasks(self):
        log = []
        scheduler = DeterministicScheduler(HmacDrbg(b"mix"))
        scheduler.spawn("a", _producer(log, "a", 10))
        scheduler.spawn("b", _producer(log, "b", 10))
        scheduler.run()
        # A strictly serial schedule would be a:0..9 then b:0..9; the
        # seeded picker interleaves.
        assert log != sorted(log)

    def test_results_and_states_recorded(self):
        log = []
        scheduler = DeterministicScheduler(HmacDrbg(b"sched"))
        a = scheduler.spawn("a", _producer(log, "a", 2))
        b = scheduler.spawn("b", _producer(log, "b", 4))
        scheduler.run()
        assert (a.result, b.result) == (2, 4)
        assert a.steps == 3  # two yields + the final StopIteration step
        assert scheduler.steps == len(log) + 2

    def test_duplicate_task_name_rejected(self):
        scheduler = DeterministicScheduler(HmacDrbg(b"sched"))
        scheduler.spawn("a", _producer([], "a", 1))
        with pytest.raises(SchedulerError, match="duplicate task name"):
            scheduler.spawn("a", _producer([], "a", 1))

    def test_clock_advances_per_step(self):
        clock = SimClock(start_us=1_000)
        scheduler = DeterministicScheduler(HmacDrbg(b"sched"), clock=clock, step_us=5)
        scheduler.spawn("a", _producer([], "a", 3))
        scheduler.run()
        # 3 yields + 1 completing step, 5 us each.
        assert clock.now_us() == 1_000 + 4 * 5


class TestFailureAndKill:
    def test_failure_propagates_after_drain(self):
        log = []

        def failing():
            yield
            raise ValueError("boom")

        scheduler = DeterministicScheduler(HmacDrbg(b"sched"))
        scheduler.spawn("bad", failing())
        good = scheduler.spawn("good", _producer(log, "good", 4))
        with pytest.raises(ValueError, match="boom"):
            scheduler.run()
        # The healthy task still drained before the failure re-raised.
        assert good.state == TaskState.DONE
        assert log == ["good:0", "good:1", "good:2", "good:3"]

    def test_run_without_raise_collects_failures(self):
        def failing():
            yield
            raise ValueError("boom")

        scheduler = DeterministicScheduler(HmacDrbg(b"sched"))
        bad = scheduler.spawn("bad", failing())
        tasks = scheduler.run(raise_on_failure=False)
        assert bad in tasks
        assert bad.state == TaskState.FAILED
        assert isinstance(bad.error, ValueError)

    def test_kill_runs_finally_blocks(self):
        cleaned = []

        def holder():
            try:
                while True:
                    yield
            finally:
                cleaned.append("released")

        scheduler = DeterministicScheduler(HmacDrbg(b"sched"))
        task = scheduler.spawn("holder", holder())
        scheduler.step()
        scheduler.kill(task)
        assert task.state == TaskState.KILLED
        assert cleaned == ["released"]

    def test_interrupt_hook_kills_and_notifies(self):
        killed = []
        condemned = {"worker-1"}
        scheduler = DeterministicScheduler(
            HmacDrbg(b"sched"),
            interrupt=lambda task: task.name in condemned,
            on_kill=lambda task: killed.append(task.name),
        )
        log = []
        scheduler.spawn("worker-0", _producer(log, "w0", 3))
        doomed = scheduler.spawn("worker-1", _producer(log, "w1", 3))
        scheduler.run()
        assert killed == ["worker-1"]
        assert doomed.state == TaskState.KILLED
        # The doomed task never produced anything.
        assert all(entry.startswith("w0") for entry in log)

    def test_on_kill_may_spawn_replacement(self):
        log = []
        state = {"killed": False}

        def interrupt(task):
            return task.name == "worker-0-g0" and not state["killed"]

        holder = {}

        def on_kill(task):
            state["killed"] = True
            holder["scheduler"].spawn("worker-0-g1", _producer(log, "g1", 2))

        scheduler = DeterministicScheduler(
            HmacDrbg(b"sched"), interrupt=interrupt, on_kill=on_kill
        )
        holder["scheduler"] = scheduler
        scheduler.spawn("worker-0-g0", _producer(log, "g0", 2))
        scheduler.run()
        assert log == ["g1:0", "g1:1"]

    def test_max_steps_raises(self):
        def forever():
            while True:
                yield

        scheduler = DeterministicScheduler(HmacDrbg(b"sched"), max_steps=50)
        scheduler.spawn("spin", forever())
        with pytest.raises(SchedulerError, match="exceeded 50 steps"):
            scheduler.run()
