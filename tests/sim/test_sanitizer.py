"""Tests for the deterministic ownership sanitizer.

Three layers: the :class:`OwnershipSanitizer` object itself (tagging,
checking, owner keys), its scheduler integration (violations surface on
the exact seeded step, reproducibly), and the runtime wiring (a worker
pool whose loops touch a sibling's queue or shard trips the sanitizer,
while the stock pool runs clean with checks actually happening).
"""

from __future__ import annotations

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import SanitizerError
from repro.mathlib.rand import HmacDrbg
from repro.mws.runtime import ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.obs.registry import MetricsRegistry
from repro.sim.sanitizer import (
    ANY_OWNER,
    OwnershipSanitizer,
    active,
    install,
    uninstall,
)
from repro.sim.scheduler import DeterministicScheduler, TaskState

ATTRIBUTES = ("ELECTRIC-S-SV", "WATER-S-SV", "GAS-S-SV")


class TestOwnershipSanitizer:
    def test_untagged_objects_always_pass(self):
        sanitizer = OwnershipSanitizer()
        sanitizer.register_task("t", ("worker", 0))
        sanitizer.enter_task("t")
        sanitizer.check(object())
        assert sanitizer.violations == 0

    def test_no_current_task_passes_even_on_tagged(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 1), "queue-1")
        sanitizer.check(shared)  # setup/teardown context: no task
        assert sanitizer.violations == 0

    def test_matching_owner_passes(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 0), "queue-0")
        sanitizer.register_task("worker-0-g0", ("worker", 0))
        sanitizer.enter_task("worker-0-g0")
        sanitizer.check(shared)
        assert sanitizer.violations == 0

    def test_restarted_generation_keeps_owner_key(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 2), "queue-2")
        sanitizer.register_task("worker-2-g5", ("worker", 2))
        sanitizer.enter_task("worker-2-g5")
        sanitizer.check(shared)
        assert sanitizer.violations == 0

    def test_wrong_owner_raises(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 1), "queue-1")
        sanitizer.register_task("worker-0-g0", ("worker", 0))
        sanitizer.enter_task("worker-0-g0")
        with pytest.raises(SanitizerError, match="queue-1"):
            sanitizer.check(shared)
        assert sanitizer.violations == 1

    def test_any_owner_object_open_to_all(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ANY_OWNER, "shared-log")
        sanitizer.register_task("worker-0-g0", ("worker", 0))
        sanitizer.enter_task("worker-0-g0")
        sanitizer.check(shared)
        assert sanitizer.violations == 0

    def test_any_owner_task_may_touch_anything(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 3), "shard-3")
        sanitizer.register_task("rebalance-drain", ANY_OWNER)
        sanitizer.enter_task("rebalance-drain")
        sanitizer.check(shared)
        assert sanitizer.violations == 0

    def test_unregistered_task_passes(self):
        # Tasks the harness never registered (ad-hoc test generators)
        # are outside the discipline, not violations.
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 1), "queue-1")
        sanitizer.enter_task("mystery-task")
        sanitizer.check(shared)
        assert sanitizer.violations == 0

    def test_stats_and_registry_counters(self):
        registry = MetricsRegistry()
        sanitizer = OwnershipSanitizer(registry=registry)
        shared = []
        sanitizer.tag(shared, ("worker", 1), "queue-1")
        sanitizer.register_task("worker-0-g0", ("worker", 0))
        sanitizer.enter_task("worker-0-g0")
        sanitizer.check(object())
        with pytest.raises(SanitizerError):
            sanitizer.check(shared)
        assert sanitizer.stats() == {"checks": 2, "violations": 1, "tagged": 1}
        counters = registry.counter_values()
        assert counters["sim.sanitizer.checks"] == 2
        assert counters["sim.sanitizer.violations"] == 1
        assert counters["sim.sanitizer.tagged"] == 1

    def test_install_uninstall_roundtrip(self):
        outer = active()  # the autouse fixture's sanitizer
        mine = OwnershipSanitizer()
        previous = install(mine)
        assert previous is outer
        assert active() is mine
        uninstall(previous)
        assert active() is outer


def scheduled_violation(seed: bytes):
    """Two tasks sharing one list; ``bad`` touches it while ``good``
    owns it.  Returns (scheduler, error) after draining."""
    sanitizer = OwnershipSanitizer()
    shared = []
    sanitizer.tag(shared, ("worker", 0), "queue-0")
    sanitizer.register_task("good", ("worker", 0))
    sanitizer.register_task("bad", ("worker", 1))

    def good_loop():
        for index in range(6):
            sanitizer.check(shared)
            shared.append(("good", index))
            yield

    def bad_loop():
        for _ in range(3):
            yield
        sanitizer.check(shared)  # cross-task access: must raise
        shared.append(("bad", -1))
        yield

    previous = install(sanitizer)
    try:
        scheduler = DeterministicScheduler(HmacDrbg(seed))
        scheduler.spawn("good", good_loop())
        scheduler.spawn("bad", bad_loop())
        error = None
        try:
            scheduler.run()
        except SanitizerError as exc:
            error = exc
        return scheduler, error, sanitizer
    finally:
        uninstall(previous)


class TestSchedulerIntegration:
    def test_violation_raises_on_the_offending_step(self):
        scheduler, error, sanitizer = scheduled_violation(b"sani-sched-1")
        assert error is not None
        assert "queue-0" in str(error)
        bad = next(task for task in scheduler.tasks if task.name == "bad")
        assert bad.state == TaskState.FAILED
        assert sanitizer.violations == 1

    def test_violation_step_is_seed_deterministic(self):
        first, error_a, _ = scheduled_violation(b"sani-sched-det")
        second, error_b, _ = scheduled_violation(b"sani-sched-det")
        assert error_a is not None and error_b is not None
        assert first.steps == second.steps
        assert str(error_a) == str(error_b)

    def test_same_owner_run_is_clean(self):
        sanitizer = OwnershipSanitizer()
        shared = []
        sanitizer.tag(shared, ("worker", 0), "queue-0")
        sanitizer.register_task("solo", ("worker", 0))

        def loop():
            for index in range(4):
                sanitizer.check(shared)
                shared.append(index)
                yield

        previous = install(sanitizer)
        try:
            scheduler = DeterministicScheduler(HmacDrbg(b"sani-clean"))
            scheduler.spawn("solo", loop())
            tasks = scheduler.run()
        finally:
            uninstall(previous)
        assert all(task.state == TaskState.DONE for task in tasks)
        assert sanitizer.violations == 0
        assert sanitizer.checks == 4

    def test_disabled_sanitizer_never_checks(self):
        # With nothing installed the scheduler takes the None fast path
        # and the same cross-task access completes silently.
        outer = active()
        uninstall(None)
        try:
            assert active() is None
            shared = []

            def toucher():
                shared.append("x")
                yield

            scheduler = DeterministicScheduler(HmacDrbg(b"sani-off"))
            scheduler.spawn("toucher", toucher())
            tasks = scheduler.run()
            assert tasks[0].state == TaskState.DONE
        finally:
            install(outer) if outer is not None else uninstall(None)


def build_deployment(seed=b"sanitizer-tests", shards=4):
    return Deployment.build(
        DeploymentConfig(
            preset="TOY64",
            rsa_bits=768,
            seed=seed,
            mws=MwsConfig(message_shards=shards),
        )
    )


def sample_jobs(messages_per_device=3, devices=3):
    return [
        (
            f"sani-dev-{index:02d}",
            [
                (
                    ATTRIBUTES[seq % len(ATTRIBUTES)],
                    f"device=sani-{index};seq={seq};reading".encode("ascii"),
                )
                for seq in range(messages_per_device)
            ],
        )
        for index in range(devices)
    ]


class EvilPool(ShardWorkerPool):
    """A pool whose workers each drive their *sibling's* loop.

    ``worker-0`` runs the loop for queue 1 and vice versa — exactly the
    seeded cross-task shard access the ISSUE's acceptance test demands.
    The static CONC001 rule catches this shape in fixtures; here the
    sanitizer must catch it dynamically.
    """

    def _worker_loop(self, index: int):
        yield from super()._worker_loop((index + 1) % self._workers)


class TestRuntimeWiring:
    def test_cross_task_queue_access_is_caught(self):
        deployment = build_deployment(seed=b"sanitizer-evil")
        try:
            pool = EvilPool(
                deployment, workers=2, scheduler_seed=b"sani-evil-seed"
            )
            with pytest.raises(SanitizerError, match="queue-"):
                pool.run(sample_jobs())
        finally:
            deployment.close()

    def test_stock_pool_runs_clean_with_checks(self):
        sanitizer = active()
        assert sanitizer is not None, "autouse fixture should be installed"
        before = sanitizer.checks
        deployment = build_deployment(seed=b"sanitizer-clean")
        try:
            pool = ShardWorkerPool(
                deployment, workers=2, scheduler_seed=b"sani-clean-seed"
            )
            result = pool.run(sample_jobs())
        finally:
            deployment.close()
        assert result.conservation_ok()
        assert sanitizer.checks > before  # the run was actually checked
        assert sanitizer.violations == 0

    def test_evil_failure_is_seed_deterministic(self):
        messages = []
        for _ in range(2):
            deployment = build_deployment(seed=b"sanitizer-evil-det")
            try:
                pool = EvilPool(
                    deployment, workers=2, scheduler_seed=b"sani-det-seed"
                )
                with pytest.raises(SanitizerError) as excinfo:
                    pool.run(sample_jobs())
                messages.append(str(excinfo.value))
            finally:
                deployment.close()
        assert messages[0] == messages[1]
