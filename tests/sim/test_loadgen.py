"""Edge cases for the load-generation harness (repro.sim.loadgen).

The scale bench must stay well-defined at the degenerate corners the
sweep never visits on its own: an empty fleet, one-reading batches and
page-size-1 retrieval.  Each corner has bitten a real system — an empty
fleet divides by zero in naive throughput math, and page size 1 maximises
cursor hand-offs, the place where paging bugs live.
"""

from repro.sim.loadgen import ScaleConfig, run_scale, worker_sweep


def tiny_config(**overrides):
    """A ScaleConfig small enough for a per-test full run_scale."""
    defaults = dict(
        meters_per_kind=1,
        batch_size=2,
        timing_batch=2,
        page_size=4,
        workers=1,
        parallel_messages=2,
        parallel_lane="inline",
        seed=b"loadgen-edge",
    )
    defaults.update(overrides)
    return ScaleConfig(**defaults)


class TestWorkerSweep:
    def test_single_worker(self):
        assert worker_sweep(1) == [1]

    def test_powers_of_two(self):
        assert worker_sweep(4) == [1, 2, 4]
        assert worker_sweep(8) == [1, 2, 4, 8]

    def test_non_power_appends_final_width(self):
        assert worker_sweep(3) == [1, 2, 3]
        assert worker_sweep(6) == [1, 2, 4, 6]


class TestScaleEdgeCases:
    def test_zero_device_fleet(self):
        dump = run_scale(tiny_config(meters_per_kind=0))
        assert dump["deposits"] == {"accepted": 0, "rejected": 0, "batches": 0}
        assert dump["shards"]["sum"] == 0
        assert dump["shards"]["conservation_ok"]
        assert dump["retrieval"]["messages"] == 0
        assert dump["retrieval"]["complete"]
        # The simulated worker pool also ran with zero jobs and still
        # satisfied conservation (vacuously) without hanging.
        assert dump["simulated"]["accepted"] == 0
        assert dump["simulated"]["conservation_ok"]

    def test_single_message_batch(self):
        dump = run_scale(tiny_config(batch_size=1))
        assert dump["deposits"]["accepted"] == dump["deposits"]["batches"] == 3
        assert dump["shards"]["conservation_ok"]
        assert dump["retrieval"]["complete"]

    def test_page_limit_one(self):
        dump = run_scale(tiny_config(page_size=1))
        accepted = dump["deposits"]["accepted"]
        assert accepted == 6  # 3 devices x 2 readings
        assert dump["retrieval"]["messages"] == accepted
        # One message per page plus the final empty page per attribute.
        assert dump["retrieval"]["pages"] >= accepted
        assert dump["retrieval"]["complete"]

    def test_dump_is_seed_deterministic_outside_timed_sections(self):
        def golden(dump):
            # batch_timing and parallel carry wall-clock measurements;
            # everything else must reproduce bit for bit from the seed.
            return {
                key: value
                for key, value in dump.items()
                if key not in ("batch_timing", "parallel")
            }

        first = run_scale(tiny_config())
        second = run_scale(tiny_config())
        assert golden(first) == golden(second)
        assert first["simulated"]["fingerprint"] == (
            second["simulated"]["fingerprint"]
        )

    def test_simulated_section_reports_worker_chaos(self):
        dump = run_scale(
            tiny_config(workers=2, worker_crash=1.0, max_worker_crashes=2)
        )
        simulated = dump["simulated"]
        assert simulated["workers"] == 2
        assert simulated["crashes"] == 2
        assert simulated["restarts"] == 2
        assert simulated["conservation_ok"]

    def test_parallel_section_shape(self):
        dump = run_scale(tiny_config(workers=2))
        parallel = dump["parallel"]
        assert parallel["lane"] == "inline"
        assert sorted(parallel["throughput"]) == ["1", "2"]
        assert parallel["speedup"] > 0

    def test_worker_sweep_rejects_nothing_but_degrades_to_serial(self):
        # workers=0 is clamped to 1 by the harness rather than crashing.
        dump = run_scale(tiny_config(workers=0))
        assert dump["meta"]["workers"] == 1
        assert dump["simulated"]["workers"] == 1
