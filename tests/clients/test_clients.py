"""Smart-device and receiving-client behaviour at the client boundary."""

import pytest

from repro.core.conventions import compute_deposit_mac, identity_string
from repro.errors import AuthenticationError, ProtocolError, TicketError
from repro.ibe.kem import HybridCiphertext, hybrid_decrypt


class TestSmartDevice:
    def test_deposit_request_structure(self, deployment):
        device = deployment.new_smart_device("meter-7")
        request = device.build_deposit("ELECTRIC-X", b"reading")
        assert request.device_id == "meter-7"
        assert request.attribute == "ELECTRIC-X"
        assert len(request.nonce) == 16
        assert request.timestamp_us > 0
        assert len(request.mac) == 32

    def test_mac_verifies_under_shared_key(self, deployment):
        device = deployment.new_smart_device("meter-7")
        request = device.build_deposit("A", b"x")
        shared_key = deployment.mws.device_keys.shared_key("meter-7")
        assert request.mac == compute_deposit_mac(shared_key, request.mac_payload())

    def test_fresh_nonce_per_message(self, deployment):
        device = deployment.new_smart_device("meter-7")
        first = device.build_deposit("A", b"x")
        second = device.build_deposit("A", b"x")
        assert first.nonce != second.nonce
        assert first.ciphertext != second.ciphertext

    def test_ciphertext_decrypts_under_identity_key(self, deployment):
        """White-box check of the §V.D encryption: the identity is
        exactly H1(A || nonce) and the hybrid container opens with its
        extracted key."""
        device = deployment.new_smart_device("meter-7")
        request = device.build_deposit("ELECTRIC-X", b"the reading")
        identity = identity_string(request.attribute, request.nonce)
        private_point = deployment.master.extract(identity).point
        ciphertext = HybridCiphertext.from_bytes(
            request.ciphertext, deployment.public_params.params
        )
        plaintext = hybrid_decrypt(
            deployment.public_params, private_point, ciphertext
        )
        assert plaintext == b"the reading"

    def test_paper_default_cipher_is_des(self, deployment):
        device = deployment.new_smart_device("meter-7")
        request = device.build_deposit("A", b"x")
        ciphertext = HybridCiphertext.from_bytes(
            request.ciphertext, deployment.public_params.params
        )
        assert ciphertext.cipher_name == "DES"

    def test_rejected_deposit_raises(self, deployment):
        device = deployment.new_smart_device("meter-7")
        deployment.mws.revoke_device("meter-7")
        with pytest.raises(ProtocolError):
            device.deposit(deployment.sd_channel("meter-7"), "A", b"x")

    def test_stats_counter(self, deployment):
        device = deployment.new_smart_device("meter-7")
        device.build_deposit("A", b"x")
        device.build_deposit("A", b"y")
        assert device.stats["deposits_built"] == 2


class TestReceivingClient:
    def test_wrong_password_rejected_end_to_end(self, deployment):
        deployment.new_receiving_client("rc", "correct-pw", attributes=["A"])
        impostor = deployment.new_receiving_client.__self__  # noqa: just clarity
        # Build a second client object with the wrong password.
        from repro.clients.receiving_client import ReceivingClient
        from repro.pki.rsa import generate_rsa_keypair
        from repro.mathlib.rand import HmacDrbg

        bad_client = ReceivingClient(
            "rc",
            "wrong-pw",
            deployment.public_params,
            generate_rsa_keypair(768, rng=HmacDrbg(b"imp")),
            clock=deployment.clock,
            rng=HmacDrbg(b"imp2"),
            gatekeeper_cipher=deployment.config.gatekeeper_cipher,
        )
        with pytest.raises(AuthenticationError):
            bad_client.retrieve(deployment.rc_mws_channel("rc"))

    def test_token_for_other_rsa_key_unopenable(self, deployment):
        """A token sealed for alice's public key is useless to an
        eavesdropper holding a different private key."""
        device = deployment.new_smart_device("meter")
        alice = deployment.new_receiving_client("alice", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"m")
        response = alice.retrieve(deployment.rc_mws_channel("alice"))

        from repro.clients.receiving_client import ReceivingClient
        from repro.pki.rsa import generate_rsa_keypair
        from repro.mathlib.rand import HmacDrbg

        eavesdropper = ReceivingClient(
            "eve",
            "pw",
            deployment.public_params,
            generate_rsa_keypair(768, rng=HmacDrbg(b"eve")),
            clock=deployment.clock,
        )
        with pytest.raises(TicketError):
            eavesdropper.open_token(response.token)

    def test_key_cache_hits_for_repeated_nonce(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"m")
        client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        # Second retrieval of the same message: key comes from the cache.
        client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        assert client.stats["keys_fetched"] == 1
        assert client.stats["cache_hits"] == 1

    def test_ticket_expiry_blocks_pkg(self):
        from tests.conftest import build_deployment
        from repro.mws.service import MwsConfig

        deployment = build_deployment(
            mws=MwsConfig(ticket_lifetime_us=1_000_000)
        )
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"m")
        response = client.retrieve(deployment.rc_mws_channel("rc"))
        token = client.open_token(response.token)
        deployment.clock.advance(2_000_000)  # ticket now expired
        with pytest.raises(TicketError):
            client.authenticate_to_pkg(deployment.rc_pkg_channel("rc"), token)
        deployment.close()

    def test_stats_counters(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"m1")
        device.deposit(deployment.sd_channel("meter"), "A", b"m2")
        results = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        assert len(results) == 2
        assert client.stats["retrievals"] == 1
        assert client.stats["decrypted"] == 2
        assert client.stats["keys_fetched"] == 2
