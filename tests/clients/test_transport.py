"""RetryPolicy backoff math and RetryingTransport behaviour."""

import pytest

from repro.clients.transport import RetryingTransport, RetryPolicy
from repro.errors import (
    AuthenticationError,
    ChannelClosedError,
    DecodeError,
    NetworkError,
    RetriesExhaustedError,
)
from repro.mathlib.rand import HmacDrbg
from repro.sim.clock import SimClock


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            base_backoff_us=100, multiplier=2.0, max_backoff_us=10_000, jitter=0.0
        )
        assert policy.backoff_us(1, None) == 100
        assert policy.backoff_us(2, None) == 200
        assert policy.backoff_us(3, None) == 400

    def test_backoff_capped(self):
        policy = RetryPolicy(
            base_backoff_us=100, multiplier=10.0, max_backoff_us=500, jitter=0.0
        )
        assert policy.backoff_us(5, None) == 500

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_us=10_000, jitter=0.1)
        values_a = [policy.backoff_us(1, HmacDrbg(b"j")) for _ in range(1)]
        values_b = [policy.backoff_us(1, HmacDrbg(b"j")) for _ in range(1)]
        assert values_a == values_b
        for _ in range(50):
            value = policy.backoff_us(1, HmacDrbg(b"j2"))
            assert 9_000 <= value <= 11_000


class TestRetryingTransport:
    def flaky(self, failures_before_success, exc=NetworkError):
        state = {"calls": 0}

        def operation():
            state["calls"] += 1
            if state["calls"] <= failures_before_success:
                raise exc("transient")
            return "ok"

        return operation, state

    def test_no_policy_is_single_attempt(self):
        transport = RetryingTransport(None, SimClock())
        operation, state = self.flaky(1)
        with pytest.raises(NetworkError):
            transport.call(operation)
        assert state["calls"] == 1
        assert transport.stats["exhausted"] == 1

    def test_recovers_within_budget(self):
        transport = RetryingTransport(
            RetryPolicy(max_attempts=4, jitter=0.0), SimClock()
        )
        operation, state = self.flaky(2)
        assert transport.call(operation) == "ok"
        assert state["calls"] == 3
        assert transport.stats["retries"] == 2
        assert transport.stats["recovered"] == 1

    def test_exhaustion_wraps_network_errors(self):
        transport = RetryingTransport(
            RetryPolicy(max_attempts=3, jitter=0.0), SimClock()
        )
        operation, state = self.flaky(99)
        with pytest.raises(RetriesExhaustedError):
            transport.call(operation)
        assert state["calls"] == 3

    def test_exhaustion_preserves_protocol_error_class(self):
        """A wrong password must still surface as AuthenticationError."""
        transport = RetryingTransport(
            RetryPolicy(max_attempts=3, jitter=0.0), SimClock()
        )
        operation, _ = self.flaky(99, exc=AuthenticationError)
        with pytest.raises(AuthenticationError):
            transport.call(operation, transient=(AuthenticationError,))

    def test_closed_channel_never_retried(self):
        transport = RetryingTransport(
            RetryPolicy(max_attempts=5, jitter=0.0), SimClock()
        )
        operation, state = self.flaky(99, exc=ChannelClosedError)
        with pytest.raises(ChannelClosedError):
            transport.call(operation)
        assert state["calls"] == 1

    def test_non_transient_errors_propagate_immediately(self):
        transport = RetryingTransport(
            RetryPolicy(max_attempts=5, jitter=0.0), SimClock()
        )
        operation, state = self.flaky(99, exc=ValueError)
        with pytest.raises(ValueError):
            transport.call(operation)
        assert state["calls"] == 1

    def test_exhaustion_chains_to_the_last_network_error(self):
        transport = RetryingTransport(
            RetryPolicy(max_attempts=2, jitter=0.0), SimClock()
        )
        operation, _ = self.flaky(99)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            transport.call(operation)
        assert isinstance(excinfo.value.__cause__, NetworkError)
        assert "gave up after 2 attempt(s)" in str(excinfo.value)

    def test_exhaustion_counts_every_attempt_and_retry(self):
        transport = RetryingTransport(
            RetryPolicy(max_attempts=4, jitter=0.0), SimClock()
        )
        operation, state = self.flaky(99)
        with pytest.raises(RetriesExhaustedError):
            transport.call(operation)
        assert state["calls"] == 4
        assert transport.stats["attempts"] == 4
        assert transport.stats["retries"] == 3  # final failure is not a retry
        assert transport.stats["exhausted"] == 1
        assert transport.stats["recovered"] == 0

    def test_decode_error_exhaustion_reraises_decode_error(self):
        """Persistent garbage exhausts as DecodeError, not a wire loss.

        DecodeError is transient by default (corruption faults mangle
        bytes in flight), but on exhaustion the caller should see what
        actually went wrong — undecodable responses — rather than the
        NetworkError-specific RetriesExhaustedError wrapper.
        """
        transport = RetryingTransport(
            RetryPolicy(max_attempts=3, jitter=0.0), SimClock()
        )
        operation, state = self.flaky(99, exc=DecodeError)
        with pytest.raises(DecodeError):
            transport.call(operation)
        assert state["calls"] == 3
        assert transport.stats["exhausted"] == 1

    def test_backoff_advances_sim_clock_not_wall_time(self):
        clock = SimClock(start_us=0)
        policy = RetryPolicy(
            max_attempts=3, base_backoff_us=1_000_000, multiplier=2.0, jitter=0.0
        )
        transport = RetryingTransport(policy, clock)
        operation, _ = self.flaky(2)
        assert transport.call(operation) == "ok"
        assert clock.now_us() == 3_000_000  # 1s + 2s, simulated only
