"""PKG session reuse across retrievals (ticket caching in the RC)."""

import pytest

from repro.mws.service import MwsConfig
from tests.conftest import build_deployment


def deposit(deployment, device, attribute, message):
    return device.deposit(deployment.sd_channel(device.device_id), attribute, message)


def retrieve(deployment, client):
    return client.retrieve_and_decrypt(
        deployment.rc_mws_channel(client.rc_id),
        deployment.rc_pkg_channel(client.rc_id),
    )


class TestSessionReuse:
    def test_second_retrieval_skips_pkg_auth(self, deployment):
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m1")
        retrieve(deployment, client)
        deposit(deployment, device, "A", b"m2")
        retrieve(deployment, client)
        assert client.stats["pkg_auths"] == 1
        assert client.stats["session_reuses"] == 1
        assert deployment.pkg.stats["sessions_established"] == 1

    def test_expired_session_reauthenticates_transparently(self):
        deployment = build_deployment(
            mws=MwsConfig(ticket_lifetime_us=5_000_000),
            seed=b"tests-session-expiry",
        )
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m1")
        assert [m.plaintext for m in retrieve(deployment, client)] == [b"m1"]
        # Let the cached session die, then deposit and retrieve again.
        deployment.clock.advance(10_000_000)
        deposit(deployment, device, "A", b"m2")
        messages = retrieve(deployment, client)
        assert {m.plaintext for m in messages} == {b"m1", b"m2"}
        assert client.stats["pkg_auths"] == 2  # re-auth happened
        deployment.close()

    def test_reused_session_decrypts_correctly(self, deployment):
        """Keys fetched under a reused session (sealed with the *old*
        session key) must still open correctly."""
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"first")
        retrieve(deployment, client)
        deposit(deployment, device, "A", b"second")
        messages = retrieve(deployment, client)
        assert {m.plaintext for m in messages} == {b"first", b"second"}
