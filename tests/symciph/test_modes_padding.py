"""Block modes, PKCS#7 padding and the sealed SymmetricScheme container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CipherError, DecryptionError, InvalidBlockSizeError, PaddingError
from repro.mathlib.rand import HmacDrbg
from repro.symciph import (
    AES,
    DES,
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
    new_cipher,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.symciph.cipher import CIPHER_REGISTRY, SymmetricScheme


def _cipher(name="AES-128"):
    return new_cipher(name, HmacDrbg(b"key:" + name.encode()).randbytes(
        CIPHER_REGISTRY[name].key_size
    ))


class TestPadding:
    @given(data=st.binary(max_size=200), block_size=st.sampled_from([8, 16]))
    @settings(max_examples=60)
    def test_roundtrip(self, data, block_size):
        padded = pkcs7_pad(data, block_size)
        assert len(padded) % block_size == 0
        assert len(padded) > len(data)
        assert pkcs7_unpad(padded, block_size) == data

    def test_full_block_added_when_aligned(self):
        padded = pkcs7_pad(b"x" * 8, 8)
        assert len(padded) == 16
        assert padded[8:] == bytes([8]) * 8

    def test_unpad_rejects_zero_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x01\x02\x03\x04\x05\x06\x07\x00", 8)

    def test_unpad_rejects_oversized_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 7 + b"\x09", 8)

    def test_unpad_rejects_inconsistent_bytes(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x00" * 5 + b"\x01\x02\x03", 8)

    def test_unpad_rejects_empty_and_misaligned(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"", 8)
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"\x01" * 9, 8)

    def test_bad_block_size(self):
        with pytest.raises(PaddingError):
            pkcs7_pad(b"x", 0)
        with pytest.raises(PaddingError):
            pkcs7_pad(b"x", 256)


class TestEcb:
    def test_roundtrip(self):
        cipher = _cipher()
        data = HmacDrbg(b"d").randbytes(64)
        assert ecb_decrypt(cipher, ecb_encrypt(cipher, data)) == data

    def test_identical_blocks_leak(self):
        """The well-known ECB weakness — documented behaviour, not a bug."""
        cipher = _cipher()
        ciphertext = ecb_encrypt(cipher, bytes(32))
        assert ciphertext[:16] == ciphertext[16:]

    def test_misaligned_raises(self):
        with pytest.raises(InvalidBlockSizeError):
            ecb_encrypt(_cipher(), bytes(10))


class TestCbc:
    def test_roundtrip(self):
        cipher = _cipher()
        iv = HmacDrbg(b"iv").randbytes(16)
        data = HmacDrbg(b"d").randbytes(80)
        assert cbc_decrypt(cipher, cbc_encrypt(cipher, data, iv), iv) == data

    def test_identical_blocks_hidden(self):
        cipher = _cipher()
        iv = HmacDrbg(b"iv").randbytes(16)
        ciphertext = cbc_encrypt(cipher, bytes(32), iv)
        assert ciphertext[:16] != ciphertext[16:]

    def test_iv_changes_ciphertext(self):
        cipher = _cipher()
        data = bytes(16)
        c1 = cbc_encrypt(cipher, data, b"\x00" * 16)
        c2 = cbc_encrypt(cipher, data, b"\x01" + b"\x00" * 15)
        assert c1 != c2

    def test_wrong_iv_length_raises(self):
        with pytest.raises(CipherError):
            cbc_encrypt(_cipher(), bytes(16), b"short")
        with pytest.raises(CipherError):
            cbc_decrypt(_cipher(), bytes(16), b"short")

    def test_works_with_des_block_size(self):
        cipher = _cipher("DES")
        iv = bytes(8)
        data = HmacDrbg(b"d8").randbytes(24)
        assert cbc_decrypt(cipher, cbc_encrypt(cipher, data, iv), iv) == data


class TestCtr:
    @given(data=st.binary(max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_length(self, data):
        cipher = _cipher()
        nonce = b"\x42" * 8
        assert ctr_transform(cipher, ctr_transform(cipher, data, nonce), nonce) == data

    def test_nonce_too_long_raises(self):
        with pytest.raises(CipherError):
            ctr_transform(_cipher(), b"data", bytes(17))

    def test_counter_wraps_without_crash(self):
        cipher = _cipher()
        nonce = b"\xff" * 16  # counter starts at max
        assert len(ctr_transform(cipher, bytes(40), nonce)) == 40

    def test_keystream_differs_per_block(self):
        cipher = _cipher()
        out = ctr_transform(cipher, bytes(32), bytes(8))
        assert out[:16] != out[16:]


class TestSymmetricScheme:
    @pytest.mark.parametrize("name", sorted(CIPHER_REGISTRY))
    def test_seal_open_roundtrip(self, name):
        key = HmacDrbg(b"sk").randbytes(CIPHER_REGISTRY[name].key_size)
        scheme = SymmetricScheme(name, key, mac=True, rng=HmacDrbg(b"r"))
        message = b"the MWS must never read this" * 3
        assert scheme.open(scheme.seal(message)) == message

    def test_empty_message(self):
        scheme = SymmetricScheme("AES-128", bytes(16), mac=True, rng=HmacDrbg(b"r"))
        assert scheme.open(scheme.seal(b"")) == b""

    def test_fresh_iv_per_seal(self):
        scheme = SymmetricScheme("AES-128", bytes(16), rng=HmacDrbg(b"r"))
        assert scheme.seal(b"same") != scheme.seal(b"same")

    def test_mac_detects_every_byte_flip(self):
        key = bytes(16)
        scheme = SymmetricScheme("AES-128", key, mac=True, rng=HmacDrbg(b"r"))
        sealed = scheme.seal(b"attack at dawn")
        for position in range(len(sealed)):
            tampered = bytearray(sealed)
            tampered[position] ^= 0x01
            with pytest.raises(DecryptionError):
                scheme.open(bytes(tampered))

    def test_wrong_key_rejected_with_mac(self):
        sealed = SymmetricScheme("AES-128", bytes(16), mac=True,
                                 rng=HmacDrbg(b"r")).seal(b"msg")
        other = SymmetricScheme("AES-128", b"\x01" * 16, mac=True)
        with pytest.raises(DecryptionError):
            other.open(sealed)

    def test_truncated_container_rejected(self):
        scheme = SymmetricScheme("AES-128", bytes(16), mac=True, rng=HmacDrbg(b"r"))
        sealed = scheme.seal(b"msg")
        with pytest.raises(DecryptionError):
            scheme.open(sealed[:10])

    def test_wrong_key_size(self):
        with pytest.raises(CipherError):
            SymmetricScheme("DES", bytes(16))

    def test_unknown_cipher(self):
        with pytest.raises(CipherError):
            SymmetricScheme("ROT13", bytes(16))
        with pytest.raises(CipherError):
            new_cipher("ROT13", bytes(16))

    def test_registry_metadata_consistent(self):
        for name, spec in CIPHER_REGISTRY.items():
            instance = spec.factory(bytes(spec.key_size))
            assert instance.block_size == spec.block_size, name
