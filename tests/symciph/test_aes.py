"""AES against FIPS-197 vectors and the ``cryptography`` package."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidBlockSizeError, InvalidKeySizeError
from repro.symciph import AES
from repro.symciph.aes import _INV_SBOX, _SBOX, _gf_mul

try:
    from cryptography.hazmat.primitives.ciphers import Cipher as RefCipher
    from cryptography.hazmat.primitives.ciphers import algorithms as ref_algorithms
    from cryptography.hazmat.primitives.ciphers import modes as ref_modes

    HAVE_REFERENCE = True
except ImportError:  # pragma: no cover
    HAVE_REFERENCE = False

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFips197Vectors:
    def test_aes128(self):
        ciphertext = AES(bytes(range(16))).encrypt_block(FIPS_PLAINTEXT)
        assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        ciphertext = AES(bytes(range(24))).encrypt_block(FIPS_PLAINTEXT)
        assert ciphertext.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        ciphertext = AES(bytes(range(32))).encrypt_block(FIPS_PLAINTEXT)
        assert ciphertext.hex() == "8ea2b7ca516745bfeafc49904b496089"

    @pytest.mark.parametrize("key_size", [16, 24, 32])
    def test_decrypt_inverts(self, key_size):
        cipher = AES(bytes(range(key_size)))
        assert cipher.decrypt_block(cipher.encrypt_block(FIPS_PLAINTEXT)) == FIPS_PLAINTEXT


class TestDerivedSbox:
    def test_known_entries(self):
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED
        assert _SBOX[0xFF] == 0x16

    def test_inverse_sbox_is_inverse(self):
        for x in range(256):
            assert _INV_SBOX[_SBOX[x]] == x

    def test_sbox_is_permutation(self):
        assert sorted(_SBOX) == list(range(256))

    def test_gf_mul_known_values(self):
        assert _gf_mul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert _gf_mul(0x57, 0x13) == 0xFE
        assert _gf_mul(1, 0xAB) == 0xAB
        assert _gf_mul(0, 0xAB) == 0


@pytest.mark.skipif(not HAVE_REFERENCE, reason="cryptography package unavailable")
class TestAesAgainstCryptography:
    @pytest.mark.parametrize("key_size", [16, 24, 32])
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_keys_and_blocks(self, key_size, data):
        key = data.draw(st.binary(min_size=key_size, max_size=key_size))
        block = data.draw(st.binary(min_size=16, max_size=16))
        ref = RefCipher(ref_algorithms.AES(key), ref_modes.ECB()).encryptor()
        assert AES(key).encrypt_block(block) == ref.update(block) + ref.finalize()


class TestAesErrors:
    def test_bad_key_size(self):
        with pytest.raises(InvalidKeySizeError):
            AES(bytes(15))

    def test_bad_block_size_encrypt(self):
        with pytest.raises(InvalidBlockSizeError):
            AES(bytes(16)).encrypt_block(bytes(15))

    def test_bad_block_size_decrypt(self):
        with pytest.raises(InvalidBlockSizeError):
            AES(bytes(16)).decrypt_block(bytes(17))
