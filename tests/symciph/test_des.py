"""DES / 3DES against FIPS vectors and the ``cryptography`` package."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidBlockSizeError, InvalidKeySizeError
from repro.mathlib.rand import HmacDrbg
from repro.symciph import DES, TripleDES

try:
    from cryptography.hazmat.decrepit.ciphers.algorithms import TripleDES as RefTDES
    from cryptography.hazmat.primitives.ciphers import Cipher as RefCipher
    from cryptography.hazmat.primitives.ciphers import modes as ref_modes

    HAVE_REFERENCE = True
except ImportError:  # pragma: no cover - environment without cryptography
    HAVE_REFERENCE = False


def _reference_des(key: bytes, block: bytes) -> bytes:
    encryptor = RefCipher(RefTDES(key * 3), ref_modes.ECB()).encryptor()
    return encryptor.update(block) + encryptor.finalize()


class TestDesVectors:
    def test_fips_walkthrough_vector(self):
        """The classic worked example from the DES specification."""
        cipher = DES(bytes.fromhex("133457799BBCDFF1"))
        ciphertext = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ciphertext.hex().upper() == "85E813540F0AB405"

    def test_all_zero_key_and_block(self):
        cipher = DES(bytes(8))
        assert cipher.encrypt_block(bytes(8)).hex().upper() == "8CA64DE9C1B123A7"

    def test_weak_key_identity_property(self):
        """Encrypting twice with the all-ones weak key is the identity."""
        cipher = DES(b"\xff" * 8)
        block = bytes.fromhex("0011223344556677")
        assert cipher.encrypt_block(cipher.encrypt_block(block)) == block

    def test_decrypt_inverts(self):
        cipher = DES(bytes.fromhex("133457799BBCDFF1"))
        block = bytes.fromhex("0123456789ABCDEF")
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_complementation_property(self):
        """DES(~k, ~m) == ~DES(k, m) — a structural property of the cipher."""
        key = bytes.fromhex("133457799BBCDFF1")
        block = bytes.fromhex("0123456789ABCDEF")
        comp_key = bytes(b ^ 0xFF for b in key)
        comp_block = bytes(b ^ 0xFF for b in block)
        regular = DES(key).encrypt_block(block)
        complemented = DES(comp_key).encrypt_block(comp_block)
        assert complemented == bytes(b ^ 0xFF for b in regular)


@pytest.mark.skipif(not HAVE_REFERENCE, reason="cryptography package unavailable")
class TestDesAgainstCryptography:
    @given(data=st.binary(min_size=16, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_random_keys_and_blocks(self, data):
        key, block = data[:8], data[8:]
        assert DES(key).encrypt_block(block) == _reference_des(key, block)


class TestDesErrors:
    def test_bad_key_size(self):
        with pytest.raises(InvalidKeySizeError):
            DES(b"short")

    def test_bad_block_size(self):
        with pytest.raises(InvalidBlockSizeError):
            DES(bytes(8)).encrypt_block(b"toolongblock")


class TestTripleDes:
    @given(data=st.binary(min_size=32, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_3key(self, data):
        cipher = TripleDES(data[:24])
        assert cipher.decrypt_block(cipher.encrypt_block(data[24:])) == data[24:]

    def test_2key_expansion(self):
        """16-byte keys are K1 || K2 || K1."""
        key16 = HmacDrbg(b"k").randbytes(16)
        block = bytes(8)
        assert (
            TripleDES(key16).encrypt_block(block)
            == TripleDES(key16 + key16[:8]).encrypt_block(block)
        )

    def test_degenerates_to_single_des(self):
        key = HmacDrbg(b"d").randbytes(8)
        block = HmacDrbg(b"b").randbytes(8)
        assert TripleDES(key * 3).encrypt_block(block) == DES(key).encrypt_block(block)

    def test_bad_key_size(self):
        with pytest.raises(InvalidKeySizeError):
            TripleDES(bytes(20))

    def test_differs_from_single_des_with_distinct_keys(self):
        key = HmacDrbg(b"x").randbytes(24)
        block = bytes(8)
        assert TripleDES(key).encrypt_block(block) != DES(key[:8]).encrypt_block(block)
