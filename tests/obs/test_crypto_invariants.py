"""Exact crypto-cost invariants via the profiling hooks.

The Miller loop's shape is a pure function of the group order q —
``bit_length(q) - 1`` doublings and ``popcount(q) - 1`` additions per
loop — and each BF operation performs a fixed number of pairings.  The
profiler counts must therefore be *exact*, not approximate: any drift
means an algorithmic change (or a broken hook), which is precisely what
these tests exist to catch.
"""

from __future__ import annotations

from repro.core.protocol import ProtocolDriver
from repro.ibe import setup
from repro.ibe.basic_ident import BasicIdent
from repro.ibe.full_ident import FullIdent
from repro.mathlib.rand import HmacDrbg
from repro.obs.crypto import CryptoCounters, active, install, profiled, uninstall
from repro.pairing import get_preset, weil_pairing
from tests.conftest import build_deployment


def miller_shape(q: int) -> tuple[int, int]:
    """(doublings, additions) of one Miller loop over order q."""
    return q.bit_length() - 1, bin(q).count("1") - 1


class TestPairingCosts:
    def test_tate_pairing_is_one_miller_loop_with_fixed_shape(self, toy_params):
        generator = toy_params.generator
        doublings, additions = miller_shape(toy_params.q)
        with profiled() as counts:
            toy_params.pair(generator, 2 * generator)
        assert counts.pairings == 1
        assert counts.miller_loops == 1
        assert counts.miller_doublings == doublings
        assert counts.miller_additions == additions

    def test_tate_field_op_counts_are_reproducible(self, toy_params):
        generator = toy_params.generator

        def profile() -> tuple[int, int, int]:
            with profiled() as counts:
                toy_params.pair(generator, 2 * generator)
            return (counts.fp2_mul, counts.fp2_sqr, counts.fp2_inv)

        first = profile()
        assert first == profile()
        assert all(count > 0 for count in first)

    def test_weil_pairing_costs_two_miller_loops(self, toy_params):
        generator = toy_params.generator
        doublings, additions = miller_shape(toy_params.q)
        with profiled() as counts:
            weil_pairing(
                generator,
                toy_params.distort(2 * generator),
                toy_params.q,
                toy_params.ext_curve,
            )
        assert counts.miller_loops == 2
        assert counts.miller_doublings == 2 * doublings
        assert counts.miller_additions == 2 * additions


class TestIbeSchemeCosts:
    def _scheme(self, master_keypair, scheme_cls):
        return scheme_cls(master_keypair.public, rng=HmacDrbg(b"obs-ibe"))

    def test_basic_ident_encrypt_decrypt_one_pairing_each(self, master_keypair):
        scheme = self._scheme(master_keypair, BasicIdent)
        key = master_keypair.extract(b"alice@example")
        with profiled() as counts:
            ciphertext = scheme.encrypt(b"alice@example", b"m" * 16)
        assert counts.pairings == 1
        assert counts.ibe_encrypts == 1
        assert counts.ibe_decrypts == 0
        with profiled() as counts:
            assert scheme.decrypt(key, ciphertext) == b"m" * 16
        assert counts.pairings == 1
        assert counts.ibe_decrypts == 1

    def test_full_ident_encrypt_decrypt_one_pairing_each(self, master_keypair):
        scheme = self._scheme(master_keypair, FullIdent)
        key = master_keypair.extract(b"bob@example")
        with profiled() as counts:
            ciphertext = scheme.encrypt(b"bob@example", b"w" * 24)
        assert counts.pairings == 1
        assert counts.ibe_encrypts == 1
        with profiled() as counts:
            assert scheme.decrypt(key, ciphertext) == b"w" * 24
        assert counts.pairings == 1
        assert counts.ibe_decrypts == 1

    def test_key_extraction_uses_no_pairing(self, master_keypair):
        with profiled() as counts:
            master_keypair.extract(b"carol@example")
        assert counts.key_extractions == 1
        assert counts.pairings == 0


class TestProtocolPhaseCosts:
    def test_exact_counts_per_phase(self, toy_params):
        messages = 3
        doublings, additions = miller_shape(toy_params.q)
        deployment = build_deployment(seed=b"crypto-costs")
        try:
            counters = deployment.crypto_counters
            device = deployment.new_smart_device("cost-meter-001")
            client = deployment.new_receiving_client(
                "cost-utility", "cost-pw", attributes=["COST-ATTR"]
            )
            driver = ProtocolDriver(deployment)
            deposits = [
                ("COST-ATTR", b"x%d" % index) for index in range(messages)
            ]

            counters.reset()
            transcript = driver.run_deposits(device, deposits)
            # Deposit phase: one KEM encapsulation (one pairing) per
            # message; nothing is decrypted or extracted yet.
            assert counters.kem_encapsulations == messages
            assert counters.pairings == messages
            assert counters.miller_loops == messages  # tate: 1 loop/pairing
            assert counters.miller_doublings == messages * doublings
            assert counters.miller_additions == messages * additions
            assert counters.kem_decapsulations == 0
            assert counters.key_extractions == 0

            counters.reset()
            driver.run_retrieval(client, transcript)
            # Retrieval: per message one PKG extraction (no pairing) and
            # one KEM decapsulation (one pairing).
            assert counters.key_extractions == messages
            assert counters.kem_decapsulations == messages
            assert counters.pairings == messages
            assert counters.miller_loops == messages
            assert counters.kem_encapsulations == 0
        finally:
            deployment.close()

    def test_full_run_totals(self):
        messages = 2
        deployment = build_deployment(seed=b"crypto-totals")
        try:
            device = deployment.new_smart_device("tot-meter-001")
            client = deployment.new_receiving_client(
                "tot-utility", "tot-pw", attributes=["TOT-ATTR"]
            )
            ProtocolDriver(deployment).run_full(
                device, client, [("TOT-ATTR", b"v")] * messages
            )
            counters = deployment.crypto_counters
            assert counters.pairings == 2 * messages
            assert counters.kem_encapsulations == messages
            assert counters.kem_decapsulations == messages
            assert counters.key_extractions == messages
        finally:
            deployment.close()


class TestProfilerLifecycle:
    def test_profiled_restores_previous_counters(self):
        outer = CryptoCounters()
        install(outer)
        try:
            with profiled() as inner:
                assert active() is inner
            assert active() is outer
        finally:
            uninstall(outer)
        assert active() is None

    def test_uninstall_only_clears_own_counters(self):
        first = CryptoCounters()
        second = CryptoCounters()
        install(first)
        install(second)  # last wins
        uninstall(first)  # not active any more: must not clear
        assert active() is second
        uninstall(second)
        assert active() is None
