"""Determinism of the whole observability surface.

Same seed + same fault plan must reproduce the obs dump — metrics,
span forest, crypto profile — byte for byte; a different seed must not.
Also locks the `MwsAdmin.status()` contract: the report is a strict
superset of the pre-observability fields, with unchanged values on the
fault-free path, and its rejection total is derived from the registry
prefix rather than a hard-coded key list.
"""

from __future__ import annotations

import json

from repro.clients.transport import RetryPolicy
from repro.core.protocol import ProtocolDriver
from repro.mws.admin import MwsAdmin
from repro.sim.faults import FaultSpec
from tests.conftest import build_deployment

CHAOS = FaultSpec(drop=0.08, duplicate=0.08, corrupt=0.08)
POLICY = RetryPolicy(max_attempts=12, base_backoff_us=1_000, jitter=0.1)

#: The MwsStatus fields (and their order) before this layer existed.
PRE_OBS_FIELDS = [
    "messages_stored",
    "attributes_in_use",
    "devices_registered",
    "clients_registered",
    "grants",
    "deposits_accepted",
    "deposits_rejected",
    "deposits_stale",
    "deposits_replayed",
    "retransmits_served",
    "retrievals_served",
    "tokens_issued",
    "alerts",
]


def run_workload(seed: bytes, faults=None, retry_policy=None, messages=4) -> str:
    deployment = build_deployment(
        seed=seed, faults=faults, retry_policy=retry_policy
    )
    try:
        device = deployment.new_smart_device("obs-meter-001")
        client = deployment.new_receiving_client(
            "obs-utility", "obs-pw", attributes=["OBS-ATTR"]
        )
        deposits = [
            ("OBS-ATTR", f"reading={index};q=obs".encode())
            for index in range(messages)
        ]
        ProtocolDriver(deployment).run_full(device, client, deposits)
        return deployment.obs_dump_json()
    finally:
        deployment.close()


class TestDumpDeterminism:
    def test_same_seed_fault_free_is_byte_identical(self):
        first = run_workload(b"det-seed-1")
        second = run_workload(b"det-seed-1")
        assert first == second

    def test_same_seed_under_chaos_is_byte_identical(self):
        first = run_workload(b"det-chaos-1", faults=CHAOS, retry_policy=POLICY)
        second = run_workload(b"det-chaos-1", faults=CHAOS, retry_policy=POLICY)
        assert first == second

    def test_different_seeds_differ(self):
        assert run_workload(b"det-seed-a") != run_workload(b"det-seed-b")

    def test_dump_shape(self):
        dump = json.loads(run_workload(b"det-shape"))
        assert dump["schema_version"] == 8
        assert set(dump) == {"schema_version", "meta", "metrics", "trace", "crypto"}
        counters = dump["metrics"]["counters"]
        assert counters["mws.sda.accepted"] == 4
        assert dump["crypto"]["crypto.pairings"] == 8
        phase_names = [span["name"] for span in dump["trace"]["spans"]]
        assert phase_names == ["phase.SD-MWS", "phase.MWS-RC", "phase.RC-PKG"]
        # Phase spans contain the client/server crypto child spans.
        text = json.dumps(dump["trace"])
        for child in ("sd.ibe_encrypt", "sda.mac_verify", "tg.issue_token",
                      "pkg.extract_key", "rc.ibe_decrypt"):
            assert child in text

    def test_histograms_present_and_populated(self):
        dump = json.loads(run_workload(b"det-histo"))
        histograms = dump["metrics"]["histograms"]
        for name in (
            "net.request_bytes",
            "net.response_bytes",
            "protocol.deposit.duration_us",
            "protocol.phase.SD-MWS.duration_us",
            "protocol.phase.MWS-RC.duration_us",
            "protocol.phase.RC-PKG.duration_us",
        ):
            assert histograms[name]["count"] > 0, name
        assert histograms["protocol.deposit.duration_us"]["count"] == 4


class TestAdminStatus:
    def run_deployment(self, **overrides):
        deployment = build_deployment(**overrides)
        device = deployment.new_smart_device("adm-meter-001")
        client = deployment.new_receiving_client(
            "adm-utility", "adm-pw", attributes=["ADM-ATTR"]
        )
        driver = ProtocolDriver(deployment)
        driver.run_full(
            device, client, [("ADM-ATTR", b"m-%d" % i) for i in range(3)]
        )
        return deployment

    def test_status_is_superset_of_pre_obs_fields(self):
        deployment = self.run_deployment()
        try:
            status = MwsAdmin(deployment.mws).status()
            rows = status.as_rows()
            names = [name for name, _ in rows]
            # Historical fields keep their order at the front; new fields
            # append after them.
            assert names[: len(PRE_OBS_FIELDS)] == PRE_OBS_FIELDS
            assert len(names) > len(PRE_OBS_FIELDS)
        finally:
            deployment.close()

    def test_fault_free_values_match_component_stats(self):
        deployment = self.run_deployment()
        try:
            status = MwsAdmin(deployment.mws).status()
            sda = deployment.mws.sda.stats
            assert status.deposits_accepted == sda["accepted"] == 3
            assert status.deposits_rejected == 0
            assert status.deposits_replayed == 0
            assert status.retransmits_served == 0
            assert status.retrievals_served == 1
            assert status.tokens_issued == 1
            assert status.deposits_malformed == 0
            assert status.messages_served == 3
            assert status.policy_denials == 0
            assert status.gatekeeper_rejections == 0
        finally:
            deployment.close()

    def test_rejected_total_derives_from_registry_prefix(self):
        deployment = self.run_deployment()
        try:
            registry = deployment.mws.registry
            # A rejection reason added later (not in any hard-coded key
            # list) must still show up in the aggregate.
            registry.counter("mws.sda.rejections.quarantined").inc(2)
            status = MwsAdmin(deployment.mws).status()
            assert status.deposits_rejected == 2
        finally:
            deployment.close()

    def test_metrics_exposes_registry_counters(self):
        deployment = self.run_deployment()
        try:
            metrics = MwsAdmin(deployment.mws).metrics()
            assert metrics["mws.sda.accepted"] == 3
            assert metrics["mws.tg.tokens_issued"] == 1
            assert "net.endpoint.mws-sd.requests_served" in metrics
        finally:
            deployment.close()


class TestCliDump:
    def test_cli_obs_dump_same_seed_identical(self, tmp_path, capsys):
        from repro.cli import main

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = main([
                "obs", "dump", "--messages", "2",
                "--seed", "cli-det", "--out", str(path),
            ])
            assert code == 0
        first, second = (path.read_bytes() for path in paths)
        assert first == second
        dump = json.loads(first)
        assert dump["schema_version"] == 8
        assert dump["meta"]["workload"] == "cli-obs-dump"
