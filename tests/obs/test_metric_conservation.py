"""Conservation law for deposit accounting, under arbitrary fault plans.

Every request the mws-sd endpoint's handler actually served ended in
exactly one of: a fresh acceptance, an idempotent retransmit replay, a
rejection (any reason under ``mws.sda.rejections.*``), or a malformed
parse.  Requests dropped on the wire never reach the handler; duplicate
deliveries invoke it twice.  Whatever fault mix the plan injects, the
four outcome counters must therefore sum to the endpoint's
``requests_served`` — a property the registry's prefix aggregation keeps
true even as rejection reasons are added or renamed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clients.transport import RetryPolicy
from repro.errors import ReproError
from repro.sim.faults import FaultSpec
from repro.sim.workload import SmartMeterFleet, WorkloadConfig
from tests.conftest import build_deployment

PROBABILITIES = st.floats(
    min_value=0.0, max_value=0.15, allow_nan=False, allow_infinity=False
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    drop=PROBABILITIES,
    duplicate=PROBABILITIES,
    corrupt=PROBABILITIES,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    readings_per_meter=st.integers(min_value=1, max_value=3),
)
def test_deposit_outcomes_sum_to_requests_served(
    drop, duplicate, corrupt, seed, readings_per_meter
):
    fleet = SmartMeterFleet(
        WorkloadConfig(meters_per_kind=1, seed=b"conservation-fleet")
    )
    deployment = build_deployment(
        seed=b"conservation-%d" % seed,
        faults=FaultSpec(drop=drop, duplicate=duplicate, corrupt=corrupt),
        retry_policy=RetryPolicy(max_attempts=8, base_backoff_us=100),
    )
    try:
        devices = {
            device_id: deployment.new_smart_device(device_id)
            for device_id in fleet.device_ids()
        }
        attempts = 0
        for device_id, device in devices.items():
            channel = deployment.sd_channel(device_id)
            attribute = fleet.attribute_for(fleet.kind_of(device_id))
            for reading in fleet.readings(device_id, readings_per_meter):
                attempts += 1
                try:
                    device.deposit(channel, attribute, reading.payload())
                except ReproError:
                    pass  # retries exhausted under heavy faults

        registry = deployment.registry
        sda = deployment.mws.sda.stats
        served = deployment.network.endpoint_stats()["mws-sd"].requests_served
        outcomes = (
            sda["accepted"]
            + sda["retransmits_replayed"]
            + registry.sum_prefix("mws.sda.rejections.")
            + registry.counter("mws.deposits.malformed").value
        )
        assert outcomes == served
        # Sanity on the workload itself: the client side really sent
        # each deposit at least once (unless everything was dropped).
        client_attempts = sum(
            registry.counter(
                f"client.sd.{device_id}.transport.attempts"
            ).value
            for device_id in devices
        )
        assert client_attempts >= attempts
    finally:
        deployment.close()
