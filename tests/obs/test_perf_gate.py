"""Deterministic perf-regression gates for the pairing fast path.

Wall-clock benchmarks are noisy, so CI gates on *operation counts*
instead: the obs crypto counters make the optimisation's claims exact —
one field inversion per fast pairing (the final exponentiation), a
>= 10x inversion reduction vs the legacy affine Miller loop, and zero
Miller loops / zero MapToPoint cube roots on a warm-cache deposit.
These numbers are properties of the algorithms, not the host.
"""

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.mathlib.rand import HmacDrbg
from repro.obs.crypto import profiled
from repro.pairing import get_preset

PARAMS = get_preset("TOY64")
A = 5 * PARAMS.generator
B = 9 * PARAMS.generator


class TestInversionBudget:
    def test_fast_pairing_costs_exactly_one_inversion(self):
        """The projective path inverts once: the final exponentiation."""
        with profiled() as ops:
            PARAMS.pair(A, B, fast=True)
        assert ops.fp2_inv == 1
        assert ops.fp_inversions == 0

    def test_legacy_vs_fast_inversion_ratio(self):
        with profiled() as legacy:
            PARAMS.pair(A, B, fast=False)
        with profiled() as fast:
            PARAMS.pair(A, B, fast=True)
        legacy_total = legacy.fp2_inv + legacy.fp_inversions
        fast_total = fast.fp2_inv + fast.fp_inversions
        assert fast_total == 1
        assert legacy_total >= 10 * fast_total

    @pytest.mark.parametrize("preset", ["TOY64", "TEST80"])
    def test_budget_holds_across_presets(self, preset):
        params = get_preset(preset)
        a = 7 * params.generator
        b = 3 * params.generator
        with profiled() as ops:
            params.pair(a, b, fast=True)
        assert ops.fp2_inv + ops.fp_inversions == 1

    def test_miller_counter_shape_is_preserved(self):
        """Fast path reports the same loop structure as the legacy path."""
        with profiled() as legacy:
            PARAMS.pair(A, B, fast=False)
        with profiled() as fast:
            PARAMS.pair(A, B, fast=True)
        assert fast.miller_loops == legacy.miller_loops
        assert fast.miller_doublings == legacy.miller_doublings
        assert fast.miller_additions == legacy.miller_additions


class TestWarmCacheDeposit:
    def test_repeated_attribute_skips_all_pairing_work(self):
        """A warm-cache deposit of a repeated attribute performs zero
        Miller loops and zero MapToPoint cube roots."""
        deployment = Deployment.build(
            DeploymentConfig(
                preset="TOY64", use_nonce=False, seed=b"perf-gate"
            )
        )
        try:
            device = deployment.new_smart_device("gate-meter")
            device.build_deposit("GATE-ATTR", b"r1")
            device.build_deposit("GATE-ATTR", b"r2")  # tables now warm
            counters = deployment.crypto_counters
            miller_before = counters.miller_loops
            roots_before = counters.cube_roots
            hits_before = counters.cache_pairing_hit
            device.build_deposit("GATE-ATTR", b"r3")
            assert counters.miller_loops == miller_before
            assert counters.cube_roots == roots_before
            assert counters.cache_pairing_hit > hits_before
        finally:
            deployment.close()

    def test_cold_cache_still_pays_once(self):
        deployment = Deployment.build(
            DeploymentConfig(
                preset="TOY64", use_nonce=False, seed=b"perf-gate-cold"
            )
        )
        try:
            device = deployment.new_smart_device("gate-meter")
            counters = deployment.crypto_counters
            miller_before = counters.miller_loops
            device.build_deposit("COLD-ATTR", b"r1")
            assert counters.miller_loops == miller_before + 1
            assert counters.cache_pairing_miss >= 1
        finally:
            deployment.close()

    def test_nonce_mode_cannot_reuse_pairings(self):
        """With per-message nonces every identity is fresh: all misses."""
        deployment = Deployment.build(
            DeploymentConfig(
                preset="TOY64", use_nonce=True, seed=b"perf-gate-nonce"
            )
        )
        try:
            device = deployment.new_smart_device("gate-meter")
            counters = deployment.crypto_counters
            hits_before = counters.cache_pairing_hit
            device.build_deposit("NONCE-ATTR", b"r1")
            device.build_deposit("NONCE-ATTR", b"r2")
            assert counters.cache_pairing_hit == hits_before
            assert counters.cache_pairing_miss >= 2
        finally:
            deployment.close()
