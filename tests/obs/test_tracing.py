"""Unit tests for the span tracer and the no-op stand-in."""

from __future__ import annotations

import pytest

from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.clock import SimClock


def make_tracer() -> Tracer:
    return Tracer(SimClock(tick_us=7))


class TestSpans:
    def test_nesting_follows_the_call_stack(self):
        tracer = make_tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["parent"]
        parent = tracer.roots[0]
        assert [child.name for child in parent.children] == ["child", "sibling"]
        assert parent.children[0].children[0].name == "grandchild"

    def test_sequential_roots(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]

    def test_timestamps_come_from_the_clock(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_us < inner.start_us
        assert inner.end_us <= outer.end_us
        assert outer.duration_us > 0

    def test_annotate_current_span(self):
        tracer = make_tracer()
        with tracer.span("op") as span:
            tracer.annotate("bytes", 42)
            span.annotate("kind", "deposit")
        assert span.annotations == {"bytes": 42, "kind": "deposit"}
        # Outside any span annotate is a silent no-op.
        tracer.annotate("ignored", 1)
        assert tracer.current() is None

    def test_exception_closes_and_marks_span(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.annotations["error"] == "RuntimeError"
        assert span.end_us is not None
        assert tracer.current() is None

    def test_find_recurses(self):
        tracer = make_tracer()
        with tracer.span("retry"):
            with tracer.span("attempt"):
                pass
            with tracer.span("attempt"):
                pass
        assert len(tracer.find("attempt")) == 2
        assert tracer.find("missing") == []


class TestSerialisation:
    def test_to_dict_shape(self):
        tracer = make_tracer()
        with tracer.span("op") as span:
            span.annotate("b", 2)
            span.annotate("a", 1)
        rendered = tracer.to_dict()["spans"][0]
        assert rendered["name"] == "op"
        assert list(rendered["annotations"]) == ["a", "b"]
        assert rendered["children"] == []
        assert rendered["duration_us"] == rendered["end_us"] - rendered["start_us"]

    def test_fingerprint_identical_for_identical_activity(self):
        def run() -> str:
            tracer = make_tracer()
            with tracer.span("phase"):
                with tracer.span("step") as span:
                    span.annotate("n", 3)
            return tracer.fingerprint()

        assert run() == run()

    def test_fingerprint_sensitive_to_annotations(self):
        def run(value: int) -> str:
            tracer = make_tracer()
            with tracer.span("phase") as span:
                span.annotate("n", value)
            return tracer.fingerprint()

        assert run(1) != run(2)

    def test_reset_clears_state(self):
        tracer = make_tracer()
        with tracer.span("op"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.current() is None


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything") as span:
            span.annotate("k", 1)
            NULL_TRACER.annotate("k2", 2)
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.to_dict() == {"spans": []}
        assert NULL_TRACER.find("anything") == []
        NULL_TRACER.reset()

    def test_null_tracer_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("op"):
                raise ValueError("surfaces")
