"""Unit tests for the metrics registry, instruments and StatsView."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DURATION_BOUNDS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from repro.sim.clock import SimClock


class TestCounterGauge:
    def test_counter_inc_and_set(self):
        counter = Counter("x.y")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(2)
        assert counter.value == 2

    def test_gauge_set(self):
        gauge = Gauge("q.depth")
        gauge.set(7)
        assert gauge.value == 7

    def test_registry_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="another type"):
            registry.gauge("name")
        with pytest.raises(ValueError, match="another type"):
            registry.histogram("name")


class TestHistogram:
    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 10, 20))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(20, 10))

    def test_observe_buckets_and_overflow(self):
        histogram = Histogram("h", bounds=(10, 100))
        for value in (1, 10, 11, 100, 101, 5000):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 2, 2]
        assert histogram.count == 6
        assert histogram.total == 5223
        assert histogram.min == 1
        assert histogram.max == 5000

    def test_percentiles_are_bucket_edges_clamped_to_extremes(self):
        histogram = Histogram("h", bounds=(10, 100, 1000))
        for value in (3, 4, 5, 6, 90, 95, 99, 100, 400, 800):
            histogram.observe(value)
        # rank(p50) = 5 -> falls in the (10, 100] bucket, edge 100.
        assert histogram.percentile(0.50) == 100
        # rank(p99) = 10 -> (100, 1000] bucket, edge 1000 clamps to max.
        assert histogram.percentile(0.99) == 800
        # rank(p10) = 1 -> first bucket edge 10, clamped up to min=3.
        assert histogram.percentile(0.10) == 10
        assert histogram.percentile(0.01) == 10

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("h").percentile(0.99) == 0

    def test_snapshot_shape(self):
        histogram = Histogram("h", bounds=(10,))
        histogram.observe(7)
        snapshot = histogram.snapshot()
        assert snapshot == {
            "bounds": [10],
            "bucket_counts": [1, 0],
            "count": 1,
            "sum": 7,
            "min": 7,
            "max": 7,
            "p50": 7,
            "p95": 7,
            "p99": 7,
        }

    def test_snapshot_is_deterministic_for_same_observations(self):
        first = Histogram("h")
        second = Histogram("h")
        for value in (5, 77, 123456, 9, 500_001):
            first.observe(value)
            second.observe(value)
        assert first.snapshot() == second.snapshot()


class TestStatsView:
    def _view(self):
        registry = MetricsRegistry()
        return registry, registry.stats_dict("mws.sda", ["accepted", "bad_mac"])

    def test_mapping_semantics(self):
        _, stats = self._view()
        assert len(stats) == 2
        assert set(stats) == {"accepted", "bad_mac"}
        stats["accepted"] += 1
        stats["accepted"] += 1
        assert stats["accepted"] == 2
        assert stats.get("missing", 5) == 5
        assert dict(stats) == {"accepted": 2, "bad_mac": 0}
        assert stats == {"accepted": 2, "bad_mac": 0}

    def test_increments_land_in_named_counters(self):
        registry, stats = self._view()
        stats["bad_mac"] += 3
        assert registry.counter("mws.sda.bad_mac").value == 3

    def test_keys_cannot_be_deleted(self):
        _, stats = self._view()
        with pytest.raises(TypeError):
            del stats["accepted"]

    def test_names_override_parks_counters_under_prefix(self):
        registry = MetricsRegistry()
        stats = registry.stats_dict(
            "mws.sda",
            ["accepted"],
            names={"bad_mac": "mws.sda.rejections.bad_mac"},
        )
        stats["bad_mac"] += 2
        stats["accepted"] += 1
        assert registry.counter("mws.sda.rejections.bad_mac").value == 2
        assert registry.counter("mws.sda.accepted").value == 1

    def test_two_views_over_same_names_share_counters(self):
        registry = MetricsRegistry()
        first = registry.stats_dict("tg", ["tokens_issued"])
        second = registry.stats_dict("tg", ["tokens_issued"])
        first["tokens_issued"] += 1
        assert second["tokens_issued"] == 1


class TestRegistryAggregation:
    def test_sum_prefix(self):
        registry = MetricsRegistry()
        registry.counter("mws.sda.rejections.bad_mac").inc(2)
        registry.counter("mws.sda.rejections.replayed").inc(3)
        registry.counter("mws.sda.accepted").inc(10)
        assert registry.sum_prefix("mws.sda.rejections.") == 5

    def test_sum_prefix_survives_new_reasons(self):
        registry = MetricsRegistry()
        registry.counter("mws.sda.rejections.bad_mac").inc()
        before = registry.sum_prefix("mws.sda.rejections.")
        registry.counter("mws.sda.rejections.brand_new_reason").inc(4)
        assert registry.sum_prefix("mws.sda.rejections.") == before + 4

    def test_collectors_merge_into_counter_values(self):
        registry = MetricsRegistry()
        registry.counter("owned").inc(1)
        registry.add_collector(lambda: {"external.pulled": 9})
        values = registry.counter_values()
        assert values["owned"] == 1
        assert values["external.pulled"] == 9
        assert list(values) == sorted(values)

    def test_snapshot_structure_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["gauges"] == {"g": 2}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_timer_requires_clock(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="clock"):
            with registry.timer("t"):
                pass

    def test_timer_observes_sim_clock_duration(self):
        clock = SimClock(tick_us=7)
        registry = MetricsRegistry(clock)
        with registry.timer("t"):
            clock.advance(1234)
        histogram = registry.histogram("t", DURATION_BOUNDS_US)
        assert histogram.count == 1
        # One auto-tick on each now_us() read brackets the advance.
        assert histogram.total >= 1234
