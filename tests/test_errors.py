"""The exception hierarchy: every error is catchable at the right levels."""

import pytest

import repro.errors as errors_module
from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    CipherError,
    CurveError,
    MacMismatchError,
    MathError,
    PolicyError,
    ProtocolError,
    ReplayError,
    ReproError,
    StorageError,
)


class TestHierarchy:
    def test_every_exported_error_derives_from_repro_error(self):
        for name in errors_module.__all__:
            error_cls = getattr(errors_module, name)
            assert issubclass(error_cls, ReproError), name
            assert issubclass(error_cls, Exception), name

    def test_all_list_matches_module_contents(self):
        module_errors = {
            name
            for name, value in vars(errors_module).items()
            if isinstance(value, type) and issubclass(value, ReproError)
        }
        assert module_errors == set(errors_module.__all__)

    @pytest.mark.parametrize(
        "child,parent",
        [
            (MacMismatchError, AuthenticationError),
            (AuthenticationError, ProtocolError),
            (ReplayError, ProtocolError),
            (AccessDeniedError, PolicyError),
            (PolicyError, ProtocolError),
        ],
    )
    def test_protocol_error_nesting(self, child, parent):
        assert issubclass(child, parent)

    def test_subsystem_roots_are_disjoint(self):
        """A math error must not be a protocol error and vice versa —
        callers distinguish attack handling from bug handling."""
        for a, b in [
            (MathError, ProtocolError),
            (CipherError, ProtocolError),
            (CurveError, ProtocolError),
            (StorageError, ProtocolError),
        ]:
            assert not issubclass(a, b)
            assert not issubclass(b, a)

    def test_errors_carry_messages(self):
        error = MacMismatchError("deposit from 'x' failed")
        assert "deposit from 'x' failed" in str(error)
        assert isinstance(error, ReproError)
