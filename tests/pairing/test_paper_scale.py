"""Paper-scale parameters: the 512-bit preset works end to end.

The unit suite runs on toy fields for speed; this file pins the claim
that nothing about the implementation is toy-specific.
"""

import pytest

from repro.ibe import BasicIdent, hybrid_decrypt, hybrid_encrypt, setup
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset


@pytest.fixture(scope="module")
def std512():
    return get_preset("STD512")


@pytest.fixture(scope="module")
def std512_master(std512):
    return setup(std512, rng=HmacDrbg(b"std512-master"))


class TestStd512:
    def test_parameters_validate(self, std512):
        std512.validate()
        assert std512.p.bit_length() == 512
        assert std512.q.bit_length() == 160

    def test_bilinearity(self, std512):
        generator = std512.generator
        base = std512.pair(generator, generator)
        assert std512.pair(7 * generator, 11 * generator) == base**77

    def test_basic_ident_roundtrip(self, std512_master):
        scheme = BasicIdent(std512_master.public, rng=HmacDrbg(b"b512"))
        ciphertext = scheme.encrypt(b"paper-scale-id", b"512-bit message")
        plaintext = scheme.decrypt(
            std512_master.extract(b"paper-scale-id"), ciphertext
        )
        assert plaintext == b"512-bit message"

    def test_hybrid_roundtrip_with_des(self, std512_master):
        """The paper's exact configuration: 512-bit BF groups + DES."""
        ciphertext = hybrid_encrypt(
            std512_master.public,
            b"ELECTRIC-GLENBROOK-SV-CA|nonce",
            b"reading=42.7kWh",
            cipher_name="DES",
            rng=HmacDrbg(b"h512"),
        )
        private_point = std512_master.extract(
            b"ELECTRIC-GLENBROOK-SV-CA|nonce"
        ).point
        assert (
            hybrid_decrypt(std512_master.public, private_point, ciphertext)
            == b"reading=42.7kWh"
        )

    def test_point_serialisation_width(self, std512):
        encoded = std512.generator.to_bytes()
        assert len(encoded) == 1 + 2 * 64  # tag + two 512-bit coordinates
