"""The Montgomery-form field backend: REDC, folded kernel, raw wNAF.

The backend's contract has three parts, each pinned here:

* **Arithmetic**: REDC round-trips and ``mont_mul``/``mont_sqr`` agree
  with plain modular arithmetic (Hypothesis over random residues).
* **Byte identity**: the folded kernel — ad-hoc lane, fixed-argument
  table and raw scalar multiplication — produces exactly the bytes the
  schoolbook backend produces, including every edge case (infinity,
  order-2 points, negative scalars, degenerate evaluations).
* **Counter parity**: the legacy profiler counters (``pairings``,
  ``miller_*``, ``fp2_*``, ``fp_inversions``) are equal across backends
  so same-seed obs dumps stay byte-identical; only the new
  ``fp_muls``/``fp_sqrs``/``fp_adds`` splits may differ.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PairingError, ParameterError
from repro.mathlib.rand import HmacDrbg
from repro.obs.crypto import CryptoCounters, profiled
from repro.pairing import FixedArgumentTate, get_preset
from repro.pairing.fast_tate import tate_pairing_fast
from repro.pairing.montgomery import (
    MontgomeryFp,
    montgomery_context,
    scalar_mult_raw,
    tate_pairing_mont,
)
from tests.conftest import build_deployment

MONT = get_preset("TOY64")
SCHOOL = get_preset("TOY64", field_backend="schoolbook")
Q = MONT.q
P = MONT.p
CTX = montgomery_context(P)

residues = st.integers(0, P - 1)
small_scalars = st.integers(1, Q - 1)


class TestMontgomeryFp:
    def test_r_is_word_aligned_and_exceeds_p(self):
        assert CTX.r_bits % 64 == 0
        assert (1 << CTX.r_bits) > P

    @given(x=residues)
    @settings(max_examples=60, deadline=None)
    def test_to_from_mont_round_trip(self, x):
        assert CTX.from_mont(CTX.to_mont(x)) == x

    @given(a=residues, b=residues)
    @settings(max_examples=60, deadline=None)
    def test_mont_mul_matches_plain_product(self, a, b):
        ma, mb = CTX.to_mont(a), CTX.to_mont(b)
        assert CTX.from_mont(CTX.mont_mul(ma, mb)) == a * b % P

    @given(a=residues)
    @settings(max_examples=40, deadline=None)
    def test_mont_sqr_matches_mont_mul(self, a):
        ma = CTX.to_mont(a)
        assert CTX.mont_sqr(ma) == CTX.mont_mul(ma, ma)

    @given(a=residues, b=residues)
    @settings(max_examples=40, deadline=None)
    def test_mont_add_sub_stay_canonical(self, a, b):
        s = CTX.mont_add(a, b)
        d = CTX.mont_sub(a, b)
        assert 0 <= s < P and s == (a + b) % P
        assert 0 <= d < P and d == (a - b) % P

    def test_profiler_splits_muls_from_sqrs(self):
        with profiled() as prof:
            CTX.mont_mul(CTX.r1, CTX.r2)
            CTX.mont_sqr(CTX.r1)
            CTX.mont_add(1, 2)
            CTX.mont_sub(2, 1)
        assert (prof.fp_muls, prof.fp_sqrs, prof.fp_adds) == (1, 1, 2)

    def test_even_modulus_rejected(self):
        with pytest.raises(ParameterError):
            MontgomeryFp(2 ** 64)

    def test_context_cached_per_prime(self):
        assert montgomery_context(P) is CTX


class TestBackendAttachment:
    def test_montgomery_preset_carries_context(self):
        assert MONT.field_backend == "montgomery"
        assert MONT.curve.field.mont is CTX
        assert MONT.ext_curve.field.mont is CTX

    def test_schoolbook_preset_has_no_context(self):
        assert SCHOOL.field_backend == "schoolbook"
        assert SCHOOL.curve.field.mont is None
        assert SCHOOL.ext_curve.field.mont is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            get_preset("TOY64", field_backend="barrett")


class TestKernelEquivalence:
    @given(k1=small_scalars, k2=small_scalars)
    @settings(max_examples=30, deadline=None)
    def test_ad_hoc_lane_matches_schoolbook_fast_path(self, k1, k2):
        a = k1 * SCHOOL.generator
        b = SCHOOL.distort(k2 * SCHOOL.generator)
        mont = tate_pairing_mont(a, b, Q, MONT.ext_curve)
        school = tate_pairing_fast(a, b, Q, SCHOOL.ext_curve)
        assert mont.to_bytes() == school.to_bytes()

    @given(k=small_scalars)
    @settings(max_examples=20, deadline=None)
    def test_fixed_table_matches_ad_hoc_lane(self, k):
        base = 5 * MONT.generator
        engine = FixedArgumentTate(base, Q, MONT.ext_curve)
        assert engine._mont is not None
        other = MONT.distort(k * MONT.generator)
        assert engine(other).to_bytes() == tate_pairing_mont(
            base, other, Q, MONT.ext_curve
        ).to_bytes()

    def test_infinity_edges(self):
        one = MONT.ext_curve.field.one()
        infinity = MONT.curve.infinity()
        assert MONT.pair(infinity, MONT.generator) == one
        assert MONT.pair(MONT.generator, infinity) == one

    def test_degenerate_evaluation_raises_like_schoolbook(self):
        # e(P, phi(P)-ish) is fine, but evaluating the Miller function of
        # P at a point on P's own vertical is degenerate on every lane.
        point = MONT.generator
        ext_point = MONT.ext_curve.point(
            MONT.ext_curve.field(point.x.value),
            MONT.ext_curve.field(point.y.value),
        )
        with pytest.raises(PairingError):
            tate_pairing_mont(point, ext_point, Q, MONT.ext_curve)
        with pytest.raises(PairingError):
            tate_pairing_fast(point, ext_point, Q, SCHOOL.ext_curve)

    def test_complex_y_falls_back_to_projective_lane(self):
        # A contrived evaluation point with complex y exercises the
        # fallback branch; both lanes agree by F_p^* cancellation.
        # distort(aG) has real y and embed(bG) real coordinates; their
        # chord sum generically has complex x *and* y.
        ext = MONT.ext_curve
        base = 17 * MONT.generator
        embedded = ext.point(
            ext.field(base.x.value), ext.field(base.y.value)
        )
        point = MONT.distort(29 * MONT.generator) + embedded
        assert point.y.b != 0
        a = 7 * MONT.generator
        mont = tate_pairing_mont(a, point, Q, ext)
        school = tate_pairing_fast(a, point, Q, SCHOOL.ext_curve)
        assert mont.to_bytes() == school.to_bytes()

    def test_ext_field_first_argument_rejected(self):
        ext_gen = MONT.distort(MONT.generator)
        with pytest.raises(PairingError):
            tate_pairing_mont(ext_gen, ext_gen, Q, MONT.ext_curve)


class TestRawScalarMult:
    @given(k=st.integers(0, 3 * Q))
    @settings(max_examples=60, deadline=None)
    def test_matches_schoolbook_wnaf(self, k):
        mont = k * MONT.generator
        school = k * SCHOOL.generator
        if mont.is_infinity():
            assert school.is_infinity()
        else:
            assert mont.to_bytes() == school.to_bytes()

    def test_negative_scalar(self):
        assert ((-11) * MONT.generator).to_bytes() == (
            (Q - 11) * MONT.generator
        ).to_bytes()

    def test_order_two_point(self):
        point = MONT.curve.point(P - 1, 0)
        assert (2 * point).is_infinity()
        assert (Q + 1) * point == ((Q + 1) % 2) * point or (
            (Q + 1) * point
        ).is_infinity()
        assert (3 * point) == point

    def test_scalar_hitting_infinity(self):
        assert (Q * MONT.generator).is_infinity()

    def test_raw_helper_returns_canonical_coordinates(self):
        gen = MONT.generator
        from repro.pairing.curve import _wnaf

        raw = scalar_mult_raw(gen.x.value, gen.y.value, _wnaf(12345, 4), 4, CTX)
        expected = 12345 * SCHOOL.generator
        assert raw == (expected.x.value, expected.y.value)

    def test_exactly_two_inversions_like_schoolbook(self):
        with profiled() as mont_prof:
            _ = 987654321 * MONT.generator
        with profiled() as school_prof:
            _ = 987654321 * SCHOOL.generator
        assert mont_prof.fp_inversions == school_prof.fp_inversions == 2


class TestCounterParity:
    def run_profiled(self, params, operations=3):
        rng = HmacDrbg(b"parity")
        prof = CryptoCounters()
        with profiled(prof):
            for _ in range(operations):
                a = params.random_scalar(rng) * params.generator
                b = params.random_scalar(rng) * params.generator
                value = params.pair(a, b)
                _ = value ** 12345
        return prof.as_dict()

    def test_legacy_counters_identical_fp_splits_differ(self):
        mont = self.run_profiled(MONT)
        school = self.run_profiled(SCHOOL)
        fp_keys = {"crypto.fp_muls", "crypto.fp_sqrs", "crypto.fp_adds"}
        assert {k: v for k, v in mont.items() if k not in fp_keys} == {
            k: v for k, v in school.items() if k not in fp_keys
        }
        # The splits record each lane's actual work, so they must differ
        # (the Montgomery kernel trades muls/adds for squarings).
        assert mont["crypto.fp_muls"] < school["crypto.fp_muls"]
        assert mont["crypto.fp_adds"] < school["crypto.fp_adds"]

    def test_fixed_table_counter_parity(self):
        def run(params):
            base = 9 * params.generator
            engine = FixedArgumentTate(base, Q, params.ext_curve)
            target = params.distort(13 * params.generator)
            with profiled() as prof:
                engine(target)
            return prof

        mont, school = run(MONT), run(SCHOOL)
        for name in ("pairings", "miller_loops", "miller_doublings",
                     "miller_additions", "fp2_mul", "fp2_sqr", "fp2_inv",
                     "fp_inversions"):
            assert getattr(mont, name) == getattr(school, name), name
        assert mont.fp_muls > 0 and mont.fp_sqrs > 0 and mont.fp_adds > 0

    @pytest.mark.parametrize("backend", ["schoolbook", "montgomery"])
    def test_same_seed_dumps_byte_identical_modulo_fp_splits(self, backend):
        # The full-deployment determinism contract: the only keys allowed
        # to vary across backends are the new additive fp_* splits.
        def dump_for(field_backend):
            deployment = build_deployment(
                seed=b"mont-parity", field_backend=field_backend
            )
            try:
                device = deployment.new_smart_device("mont-meter-001")
                client = deployment.new_receiving_client(
                    "mont-utility", "mont-pw", attributes=["MONT-ATTR"]
                )
                from repro.core.protocol import ProtocolDriver

                ProtocolDriver(deployment).run_full(
                    device, client, [("MONT-ATTR", b"reading=1;mont")]
                )
                return json.loads(deployment.obs_dump_json())
            finally:
                deployment.close()

        def strip(dump):
            fp_keys = {"fp_muls", "fp_sqrs", "fp_adds"}
            dump["crypto"] = {
                k: v for k, v in dump["crypto"].items()
                if k.removeprefix("crypto.") not in fp_keys
            }
            counters = dump["metrics"]["counters"]
            dump["metrics"]["counters"] = {
                k: v for k, v in counters.items()
                if k.removeprefix("crypto.") not in fp_keys
            }
            return dump

        ours = strip(dump_for(backend))
        theirs = strip(dump_for(
            "montgomery" if backend == "schoolbook" else "schoolbook"
        ))
        assert ours == theirs
