"""Field axioms and operations for F_p and F_p^2 (property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    MathError,
    NoSquareRootError,
    NotInvertibleError,
    ParameterError,
)
from repro.mathlib.rand import HmacDrbg
from repro.pairing.fields import Fp, Fp2

# A small prime with p % 12 == 11 so both field constructions work.
P = 10007  # 10007 % 12 == 11
FP = Fp(P)
FP2 = Fp2(P)

fp_elements = st.integers(0, P - 1).map(FP)
fp2_elements = st.tuples(st.integers(0, P - 1), st.integers(0, P - 1)).map(
    lambda ab: FP2(ab[0], ab[1])
)


class TestFpAxioms:
    @given(a=fp_elements, b=fp_elements, c=fp_elements)
    @settings(max_examples=60)
    def test_ring_axioms(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert (a * b) * c == a * (b * c)
        assert a + b == b + a
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c

    @given(a=fp_elements)
    def test_identities(self, a):
        assert a + FP.zero() == a
        assert a * FP.one() == a
        assert a - a == FP.zero()
        assert a + (-a) == FP.zero()

    @given(a=fp_elements)
    def test_multiplicative_inverse(self, a):
        if a.is_zero():
            with pytest.raises(NotInvertibleError):
                a.inverse()
        else:
            assert a * a.inverse() == FP.one()
            assert a / a == FP.one()

    @given(a=fp_elements, e=st.integers(0, 50))
    @settings(max_examples=40)
    def test_pow_matches_repeated_multiplication(self, a, e):
        expected = FP.one()
        for _ in range(e):
            expected = expected * a
        assert a**e == expected

    @given(a=fp_elements)
    def test_negative_exponent(self, a):
        if not a.is_zero():
            assert a**-3 == (a**3).inverse()

    def test_fermat_little_theorem(self):
        assert FP(1234) ** (P - 1) == FP.one()

    @given(a=fp_elements, e=st.integers(1, 50))
    @settings(max_examples=30)
    def test_negative_exponent_is_inverse_power(self, a, e):
        if not a.is_zero():
            assert a ** -e == (a ** e).inverse()
            assert a ** -e == a.inverse() ** e

    def test_zero_to_negative_exponent_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            FP.zero() ** -1

    @pytest.mark.parametrize("exponent", [2.0, "3", None, FP(2)])
    def test_non_int_exponent_is_typed_error(self, exponent):
        with pytest.raises(MathError, match="field exponent must be an int"):
            FP(7) ** exponent


class TestFpOperations:
    def test_int_coercion_both_sides(self):
        a = FP(10)
        assert a + 5 == FP(15)
        assert 5 + a == FP(15)
        assert a - 3 == FP(7)
        assert 3 - a == FP(P - 7)
        assert 2 * a == FP(20)
        assert a / 2 == FP(5)
        assert 100 / FP(10) == FP(10)

    def test_mixed_prime_raises(self):
        with pytest.raises(MathError):
            FP(1) + Fp(11)(1)

    @given(a=fp_elements)
    def test_sqrt_of_square(self, a):
        square = a * a
        root = square.sqrt()
        assert root * root == square

    def test_sqrt_nonresidue_raises(self):
        # Find a non-residue.
        for x in range(2, P):
            try:
                FP(x).sqrt()
            except NoSquareRootError:
                return
        pytest.fail("no quadratic non-residue found (impossible)")

    def test_bytes_roundtrip(self):
        a = FP(12345 % P)
        assert FP.from_bytes(a.to_bytes()) == a
        assert len(a.to_bytes()) == FP.byte_length

    def test_random_in_range(self):
        value = FP.random(HmacDrbg(b"f"))
        assert 0 <= value.value < P

    def test_repr_and_hash(self):
        assert "10007" in repr(FP(3))
        assert hash(FP(3)) == hash(FP(3 + P))

    def test_field_equality(self):
        assert Fp(P) == Fp(P)
        assert Fp(P) != Fp(11)

    def test_rejects_tiny_prime(self):
        with pytest.raises(ParameterError):
            Fp(2)


class TestFp2Axioms:
    @given(a=fp2_elements, b=fp2_elements, c=fp2_elements)
    @settings(max_examples=60)
    def test_ring_axioms(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert (a * b) * c == a * (b * c)
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c

    @given(a=fp2_elements)
    def test_inverse(self, a):
        if a.is_zero():
            with pytest.raises(NotInvertibleError):
                a.inverse()
        else:
            assert a * a.inverse() == FP2.one()

    @given(a=fp2_elements)
    def test_square_matches_mul(self, a):
        assert a.square() == a * a

    @given(a=fp2_elements, e=st.integers(0, 40))
    @settings(max_examples=40)
    def test_pow(self, a, e):
        expected = FP2.one()
        for _ in range(e):
            expected = expected * a
        assert a**e == expected

    def test_i_squared_is_minus_one(self):
        assert FP2.i() * FP2.i() == FP2(P - 1, 0)

    @given(a=fp2_elements)
    def test_frobenius_is_pth_power(self, a):
        assert a.conjugate() == a**P

    @given(a=fp2_elements, b=fp2_elements)
    @settings(max_examples=40)
    def test_conjugate_is_multiplicative(self, a, b):
        assert (a * b).conjugate() == a.conjugate() * b.conjugate()

    @given(a=fp2_elements)
    def test_norm_matches_conjugate_product(self, a):
        product = a * a.conjugate()
        assert product.b == 0
        assert product.a == a.norm().value

    def test_multiplicative_group_order(self):
        assert FP2(3, 4) ** (P * P - 1) == FP2.one()

    @given(a=fp2_elements, e=st.integers(1, 40))
    @settings(max_examples=30)
    def test_negative_exponent_is_inverse_power(self, a, e):
        if not a.is_zero():
            assert a ** -e == (a ** e).inverse()

    @pytest.mark.parametrize("exponent", [1.5, b"2", object()])
    def test_non_int_exponent_is_typed_error(self, exponent):
        with pytest.raises(MathError, match="field exponent must be an int"):
            FP2(3, 4) ** exponent


class TestFp2Operations:
    @given(a=fp2_elements)
    @settings(max_examples=60)
    def test_sqrt_of_square(self, a):
        square = a.square()
        root = square.sqrt()
        assert root.square() == square

    def test_sqrt_nonsquare_raises(self):
        # g generates F_p2*; an odd power of a generator is a non-square.
        # Find one by trial: x is a non-square iff x^((p^2-1)/2) == -1.
        exponent = (P * P - 1) // 2
        for a in range(2, 50):
            candidate = FP2(a, 1)
            if candidate**exponent == FP2(P - 1, 0):
                with pytest.raises(NoSquareRootError):
                    candidate.sqrt()
                return
        pytest.fail("no non-square found (astronomically unlikely)")

    def test_lift_embeds_base_field(self):
        assert FP2.lift(FP(7)) == FP2(7, 0)
        assert FP2.lift(9) == FP2(9, 0)

    def test_bytes_roundtrip(self):
        a = FP2(123, 456)
        assert FP2.from_bytes(a.to_bytes()) == a
        with pytest.raises(MathError):
            FP2.from_bytes(a.to_bytes() + b"x")

    def test_requires_p_3_mod_4(self):
        with pytest.raises(ParameterError):
            Fp2(13)  # 13 % 4 == 1

    def test_int_equality(self):
        assert FP2(5, 0) == 5
        assert FP2(5, 1) != 5
