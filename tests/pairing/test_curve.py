"""Elliptic-curve group law and point utilities on y^2 = x^3 + 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CurveError, PointNotOnCurveError
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset
from repro.pairing.curve import Curve
from repro.pairing.fields import Fp

PARAMS = get_preset("TOY64")
CURVE = PARAMS.curve
EXT_CURVE = PARAMS.ext_curve


def random_points(count, seed=b"pts"):
    rng = HmacDrbg(seed)
    return [CURVE.random_point(rng) for _ in range(count)]


scalars = st.integers(-3 * PARAMS.q, 3 * PARAMS.q)


class TestGroupLaw:
    def test_identity_element(self):
        infinity = CURVE.infinity()
        for point in random_points(5):
            assert point + infinity == point
            assert infinity + point == point
        assert infinity + infinity == infinity

    def test_inverse_element(self):
        for point in random_points(5):
            assert (point + (-point)).is_infinity()
            assert point - point == CURVE.infinity()

    def test_commutativity(self):
        a, b = random_points(2, b"comm")
        assert a + b == b + a

    def test_associativity(self):
        for seed in (b"a1", b"a2", b"a3"):
            a, b, c = random_points(3, seed)
            assert (a + b) + c == a + (b + c)

    def test_doubling_matches_addition(self):
        (point,) = random_points(1, b"dbl")
        assert point.double() == point + point

    def test_order_2_points_double_to_infinity(self):
        """(x, 0) has order 2; on this curve x = -1 since x^3 = -1."""
        p = PARAMS.p
        point = CURVE.point(p - 1, 0)
        assert point.double().is_infinity()

    @given(k=scalars)
    @settings(max_examples=30, deadline=None)
    def test_scalar_multiplication_linearity(self, k):
        (point,) = random_points(1, b"lin")
        assert (k + 1) * point == k * point + point

    def test_scalar_edge_cases(self):
        (point,) = random_points(1, b"edge")
        assert (0 * point).is_infinity()
        assert 1 * point == point
        assert -1 * point == -point
        assert 2 * point == point.double()

    def test_subgroup_order(self):
        generator = PARAMS.generator
        assert (PARAMS.q * generator).is_infinity()
        assert not ((PARAMS.q - 1) * generator).is_infinity()

    def test_group_order_p_plus_1(self):
        """Supersingular: #E(F_p) = p + 1 — any point times p+1 is O."""
        for point in random_points(3, b"ord"):
            assert ((PARAMS.p + 1) * point).is_infinity()


class TestPointValidation:
    def test_point_on_curve_accepted(self):
        (point,) = random_points(1, b"val")
        rebuilt = CURVE.point(point.x, point.y)
        assert rebuilt == point

    def test_point_off_curve_rejected(self):
        with pytest.raises(PointNotOnCurveError):
            CURVE.point(1, 1)  # 1 != 1 + 1

    def test_integer_coordinates_promoted(self):
        assert CURVE.point(0, 1).x == CURVE.field(0)

    def test_known_small_point(self):
        """(0, ±1) is always on y^2 = x^3 + 1."""
        point = CURVE.point(0, 1)
        assert point + CURVE.point(0, PARAMS.p - 1) == CURVE.infinity()

    def test_contains(self):
        assert CURVE.contains(CURVE.field(0), CURVE.field(1))
        assert not CURVE.contains(CURVE.field(1), CURVE.field(1))


class TestLiftAndRandom:
    @given(y=st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_lift_x_lands_on_curve(self, y):
        point = CURVE.lift_x(y % PARAMS.p)
        assert CURVE.contains(point.x, point.y)
        assert point.y.value == y % PARAMS.p

    def test_lift_x_base_field_only(self):
        with pytest.raises(CurveError):
            EXT_CURVE.lift_x(1)

    def test_random_point_on_curve(self):
        point = CURVE.random_point(HmacDrbg(b"rp"))
        assert CURVE.contains(point.x, point.y)

    def test_random_point_deterministic(self):
        assert CURVE.random_point(HmacDrbg(b"s")) == CURVE.random_point(HmacDrbg(b"s"))


class TestSerialisation:
    def test_affine_roundtrip(self):
        (point,) = random_points(1, b"ser")
        assert CURVE.from_bytes(point.to_bytes()) == point

    def test_infinity_roundtrip(self):
        assert CURVE.from_bytes(CURVE.infinity().to_bytes()).is_infinity()

    def test_ext_curve_roundtrip(self):
        point = PARAMS.distort(PARAMS.generator)
        assert EXT_CURVE.from_bytes(point.to_bytes()) == point

    def test_bad_tag_rejected(self):
        with pytest.raises(CurveError):
            CURVE.from_bytes(b"\x07" + bytes(16))

    def test_bad_length_rejected(self):
        with pytest.raises(CurveError):
            CURVE.from_bytes(b"\x04" + bytes(3))

    def test_bad_length_message_reports_lengths(self):
        """The error names the actual body length and the expected one."""
        width = CURVE.field.byte_length
        with pytest.raises(CurveError, match=rf"length 3 \(expected {2 * width}\)"):
            CURVE.from_bytes(b"\x04" + bytes(3))
        ext_width = 2 * EXT_CURVE.field.byte_length
        with pytest.raises(
            CurveError, match=rf"length 5 \(expected {2 * ext_width}\)"
        ):
            EXT_CURVE.from_bytes(b"\x04" + bytes(5))

    def test_off_curve_encoding_rejected(self):
        (point,) = random_points(1, b"oc")
        corrupt = bytearray(point.to_bytes())
        corrupt[-1] ^= 1
        with pytest.raises((PointNotOnCurveError, CurveError)):
            CURVE.from_bytes(bytes(corrupt))


class TestDistortionMap:
    def test_image_is_on_extension_curve(self):
        point = PARAMS.generator
        distorted = PARAMS.distort(point)
        assert distorted.curve == EXT_CURVE
        assert EXT_CURVE.contains(distorted.x, distorted.y)

    def test_distortion_is_homomorphic(self):
        point = PARAMS.generator
        assert PARAMS.distort(5 * point) == 5 * PARAMS.distort(point)

    def test_distortion_of_infinity(self):
        assert PARAMS.distort(CURVE.infinity()).is_infinity()

    def test_image_linearly_independent(self):
        """phi(P) has an x-coordinate outside F_p, so it cannot be a
        base-field multiple of P."""
        distorted = PARAMS.distort(PARAMS.generator)
        assert distorted.x.b != 0

    def test_zeta_is_primitive_cube_root(self):
        one = EXT_CURVE.field.one()
        assert PARAMS.zeta != one
        assert PARAMS.zeta**3 == one
        assert PARAMS.zeta**2 + PARAMS.zeta + one == EXT_CURVE.field.zero()


class TestErrors:
    def test_mixed_curve_addition_raises(self):
        other = Curve(Fp(10007))
        point_a = CURVE.point(0, 1)
        point_b = other.point(0, 1)
        with pytest.raises(CurveError):
            point_a + point_b

    def test_affine_requires_both_coordinates(self):
        from repro.pairing.curve import Point

        with pytest.raises(CurveError):
            Point(CURVE, x=CURVE.field(1), y=None)
