"""Bilinearity, non-degeneracy and consistency of the Tate/Weil pairings.

These properties are everything the IBE layer relies on; if they hold,
BasicIdent correctness is a corollary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PairingError
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset, tate_pairing, weil_pairing
from repro.pairing.miller import miller_loop
from repro.pairing.tate import _final_exponentiation

PARAMS = get_preset("TOY64")
Q = PARAMS.q
GENERATOR = PARAMS.generator
ONE = PARAMS.ext_curve.field.one()

scalars = st.integers(1, Q - 1)


def pairing_functions():
    tate = lambda a, b: tate_pairing(a, PARAMS.distort(b), Q, PARAMS.ext_curve)
    weil = lambda a, b: weil_pairing(a, PARAMS.distort(b), Q, PARAMS.ext_curve)
    return [("tate", tate), ("weil", weil)]


@pytest.mark.parametrize("name,pairing", pairing_functions())
class TestPairingProperties:
    def test_non_degenerate(self, name, pairing):
        assert pairing(GENERATOR, GENERATOR) != ONE

    def test_output_has_order_q(self, name, pairing):
        value = pairing(GENERATOR, GENERATOR)
        assert value**Q == ONE
        assert value != ONE

    @given(a=scalars, b=scalars)
    @settings(max_examples=15, deadline=None)
    def test_bilinearity(self, name, pairing, a, b):
        base = pairing(GENERATOR, GENERATOR)
        assert pairing(a * GENERATOR, b * GENERATOR) == base ** (a * b % Q)

    def test_linearity_left_right(self, name, pairing):
        a, b = 12345 % Q, 67890 % Q
        left = pairing(a * GENERATOR, GENERATOR)
        right = pairing(GENERATOR, a * GENERATOR)
        assert left == right  # symmetric via distortion map
        assert pairing(GENERATOR, GENERATOR) ** a == left

    def test_additivity(self, name, pairing):
        a, b = 777 % Q, 999 % Q
        combined = pairing((a * GENERATOR) + (b * GENERATOR), GENERATOR)
        assert combined == pairing(GENERATOR, GENERATOR) ** ((a + b) % Q)

    def test_infinity_maps_to_one(self, name, pairing):
        infinity = PARAMS.curve.infinity()
        assert pairing(infinity, GENERATOR) == ONE
        assert pairing(GENERATOR, infinity) == ONE

    def test_ibe_key_agreement_identity(self, name, pairing):
        """e(sP, rI) == e(rP, sI): the equation the whole paper rests on."""
        rng = HmacDrbg(b"ibe:" + name.encode())
        s = PARAMS.random_scalar(rng)
        r = PARAMS.random_scalar(rng)
        identity_point = PARAMS.cofactor * PARAMS.curve.random_point(rng)
        lhs = pairing(s * GENERATOR, r * identity_point)
        rhs = pairing(r * GENERATOR, s * identity_point)
        assert lhs == rhs


class TestTateSpecifics:
    def test_deterministic(self):
        a = PARAMS.pair(GENERATOR, GENERATOR)
        b = PARAMS.pair(GENERATOR, GENERATOR)
        assert a == b

    def test_final_exponentiation_matches_direct_pow(self):
        """The Frobenius shortcut must equal the naive exponentiation."""
        rng = HmacDrbg(b"fe")
        value = PARAMS.ext_curve.field.random(rng)
        expected = value ** ((PARAMS.p**2 - 1) // Q)
        assert _final_exponentiation(value, PARAMS.p, Q) == expected

    def test_final_exponentiation_rejects_zero(self):
        with pytest.raises(PairingError):
            _final_exponentiation(PARAMS.ext_curve.field.zero(), PARAMS.p, Q)

    def test_requires_extension_curve(self):
        with pytest.raises(PairingError):
            tate_pairing(GENERATOR, GENERATOR, Q, PARAMS.curve)


class TestWeilSpecifics:
    def test_weil_self_pairing_after_lift_is_one(self):
        """e_w(P, P) = 1 for the *same* point (alternating property)."""
        lifted = PARAMS.distort(GENERATOR)
        assert weil_pairing(lifted, lifted, Q, PARAMS.ext_curve) == ONE

    def test_weil_antisymmetry(self):
        """e_w(P, Q) * e_w(Q, P) == 1."""
        distorted = PARAMS.distort(GENERATOR)
        forward = weil_pairing(GENERATOR, distorted, Q, PARAMS.ext_curve)
        backward = weil_pairing(distorted, GENERATOR, Q, PARAMS.ext_curve)
        assert forward * backward == ONE

    def test_params_pair_weil_mode(self):
        weil_params = get_preset("TOY64", pairing_algorithm="weil")
        value = weil_params.pair(weil_params.generator, weil_params.generator)
        assert value != ONE
        assert value**Q == ONE


class TestMillerLoop:
    def test_rejects_nonpositive_n(self):
        distorted = PARAMS.distort(GENERATOR)
        with pytest.raises(PairingError):
            miller_loop(distorted, distorted, 0)

    def test_infinity_inputs_give_one(self):
        ext_infinity = PARAMS.ext_curve.infinity()
        distorted = PARAMS.distort(GENERATOR)
        assert miller_loop(ext_infinity, distorted, Q) == ONE
        assert miller_loop(distorted, ext_infinity, Q) == ONE

    def test_degenerate_evaluation_detected(self):
        """Evaluating f_{q,P} at a multiple of P hits a vertical zero and
        must raise, not return a wrong value."""
        from repro.pairing.tate import _lift_point

        lifted = _lift_point(GENERATOR, PARAMS.ext_curve)
        with pytest.raises(PairingError):
            miller_loop(lifted, lifted, Q)


class TestCrossPresetSanity:
    @pytest.mark.parametrize("preset", ["TOY64", "TEST80"])
    def test_bilinearity_across_presets(self, preset):
        params = get_preset(preset)
        generator = params.generator
        base = params.pair(generator, generator)
        a, b = 17, 23
        assert params.pair(a * generator, b * generator) == base ** (a * b)
