"""Parameter presets/generation and the H1/H2/H3 hash functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.mathlib.rand import HmacDrbg
from repro.pairing import PRESETS, BFParams, generate_params, get_preset
from repro.pairing.hashing import (
    gt_to_bytes,
    hash_to_point,
    hash_to_scalar,
    mask_bytes,
)

PARAMS = get_preset("TOY64")


class TestPresets:
    @pytest.mark.parametrize("name", ["TOY64", "TEST80", "SMALL160"])
    def test_presets_validate(self, name):
        get_preset(name).validate()

    def test_preset_bit_lengths_match_names(self):
        for name, (p, _q) in PRESETS.items():
            expected_bits = int("".join(c for c in name if c.isdigit()))
            assert p.bit_length() == expected_bits, name

    def test_unknown_preset_raises(self):
        with pytest.raises(ParameterError):
            get_preset("HUGE9000")

    def test_preset_objects_are_independent(self):
        a = get_preset("TOY64")
        b = get_preset("TOY64")
        assert a is not b
        assert a.generator == b.generator  # deterministic derivation

    def test_repr_mentions_sizes(self):
        assert "2^64" in repr(get_preset("TOY64"))


class TestFromPrimes:
    def test_rejects_wrong_congruence(self):
        # 13 % 12 == 1, not 11.
        with pytest.raises(ParameterError):
            BFParams.from_primes(13, 7)

    def test_rejects_non_divisor(self):
        p, _q = PRESETS["TOY64"]
        with pytest.raises(ParameterError):
            BFParams.from_primes(p, 7919)  # prime, but does not divide p+1

    def test_rejects_unknown_pairing_algorithm(self):
        p, q = PRESETS["TOY64"]
        with pytest.raises(ParameterError):
            BFParams.from_primes(p, q, pairing_algorithm="ate")

    def test_validate_catches_corrupt_generator(self):
        params = get_preset("TOY64")
        params.generator = params.curve.point(0, 1)  # order 3, not q
        with pytest.raises(ParameterError):
            params.validate()

    def test_custom_generator_seed_changes_generator(self):
        p, q = PRESETS["TOY64"]
        a = BFParams.from_primes(p, q, generator_seed=b"seed-a")
        b = BFParams.from_primes(p, q, generator_seed=b"seed-b")
        assert a.generator != b.generator
        a.validate()
        b.validate()


class TestGenerateParams:
    def test_fresh_parameters_validate(self):
        params = generate_params(q_bits=32, p_bits=72, rng=HmacDrbg(b"gen"))
        params.validate()
        assert params.p.bit_length() == 72
        assert params.q.bit_length() == 32


class TestHashToPoint:
    def test_output_in_subgroup(self):
        point = hash_to_point(PARAMS, b"ELECTRIC-GLENBROOK-SV-CA")
        assert not point.is_infinity()
        assert (PARAMS.q * point).is_infinity()

    def test_deterministic(self):
        assert hash_to_point(PARAMS, b"attr") == hash_to_point(PARAMS, b"attr")

    def test_distinct_identities_distinct_points(self):
        points = {
            hash_to_point(PARAMS, f"attr-{i}".encode()).to_bytes()
            for i in range(50)
        }
        assert len(points) == 50

    def test_nonce_changes_point(self):
        base = hash_to_point(PARAMS, b"attr|nonce-1")
        other = hash_to_point(PARAMS, b"attr|nonce-2")
        assert base != other

    def test_rejects_str(self):
        with pytest.raises(ParameterError):
            hash_to_point(PARAMS, "not-bytes")

    def test_accepts_bytearray(self):
        assert hash_to_point(PARAMS, bytearray(b"x")) == hash_to_point(PARAMS, b"x")


class TestHashToScalar:
    @given(data=st.binary(max_size=64))
    @settings(max_examples=50)
    def test_range(self, data):
        value = hash_to_scalar(PARAMS, data)
        assert 1 <= value <= PARAMS.q - 1

    def test_deterministic_and_spread(self):
        values = {hash_to_scalar(PARAMS, bytes([i])) for i in range(100)}
        assert len(values) > 95  # collisions astronomically unlikely
        assert hash_to_scalar(PARAMS, b"x") == hash_to_scalar(PARAMS, b"x")


class TestMasks:
    def test_mask_length(self):
        for n in (0, 1, 16, 100):
            assert len(mask_bytes(b"seed", n)) == n

    def test_domain_separation(self):
        assert mask_bytes(b"s", 32, b"domain-a") != mask_bytes(b"s", 32, b"domain-b")

    def test_gt_serialisation_injective_on_samples(self):
        base = PARAMS.pair(PARAMS.generator, PARAMS.generator)
        encodings = {gt_to_bytes(base**k) for k in range(1, 50)}
        assert len(encodings) == 49
