"""Fixed-base precomputation: correctness against the generic paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.mathlib.rand import HmacDrbg
from repro.obs.crypto import profiled
from repro.pairing import get_preset
from repro.pairing.precompute import (
    FixedBaseGt,
    FixedBasePoint,
    clear_shared_tables,
    shared_table_stats,
)

PARAMS = get_preset("TOY64")
Q = PARAMS.q
GENERATOR = PARAMS.generator
GT_BASE = PARAMS.pair(GENERATOR, GENERATOR)


class TestFixedBasePoint:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedBasePoint(GENERATOR, Q)

    @given(scalar=st.integers(0, 3 * Q))
    @settings(max_examples=60, deadline=None)
    def test_matches_double_and_add(self, table, scalar):
        assert table(scalar) == (scalar % Q) * GENERATOR

    def test_edge_scalars(self, table):
        assert table(0).is_infinity()
        assert table(Q).is_infinity()
        assert table(1) == GENERATOR
        assert table(Q - 1) == -GENERATOR

    @pytest.mark.parametrize("window_bits", [1, 2, 4, 6])
    def test_any_window_size(self, window_bits):
        table = FixedBasePoint(GENERATOR, Q, window_bits=window_bits)
        assert table(123456789 % Q) == (123456789 % Q) * GENERATOR

    def test_invalid_window_rejected(self):
        with pytest.raises(ParameterError):
            FixedBasePoint(GENERATOR, Q, window_bits=0)
        with pytest.raises(ParameterError):
            FixedBasePoint(GENERATOR, Q, window_bits=9)

    def test_non_generator_base(self):
        rng = HmacDrbg(b"base")
        base = PARAMS.cofactor * PARAMS.curve.random_point(rng)
        table = FixedBasePoint(base, Q)
        assert table(777) == 777 * base

    def test_table_size_reported(self, table):
        assert table.table_points > 0


class TestFixedBaseGt:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedBaseGt(GT_BASE, Q)

    @given(exponent=st.integers(0, 3 * Q))
    @settings(max_examples=60, deadline=None)
    def test_matches_square_and_multiply(self, table, exponent):
        assert table(exponent) == GT_BASE ** (exponent % Q)

    def test_edge_exponents(self, table):
        one = PARAMS.ext_curve.field.one()
        assert table(0) == one
        assert table(Q) == one
        assert table(1) == GT_BASE

    def test_kem_equivalence(self, table):
        """The encryptor identity the KEM relies on: table(r) is the
        same shared value the decryptor derives."""
        rng = HmacDrbg(b"kem")
        r = PARAMS.random_scalar(rng)
        fast = table(r)
        slow = PARAMS.pair(GENERATOR, r * GENERATOR)
        assert fast == slow


class TestSharedTables:
    @pytest.fixture(autouse=True)
    def fresh_memo(self):
        clear_shared_tables()
        yield
        clear_shared_tables()

    def test_point_table_memoized_by_fingerprint(self):
        first = FixedBasePoint.shared(GENERATOR, Q)
        again = FixedBasePoint.shared(GENERATOR, Q)
        assert first is again
        stats = shared_table_stats()
        assert stats == {"hits": 1, "misses": 1}

    def test_distinct_fingerprints_miss(self):
        FixedBasePoint.shared(GENERATOR, Q)
        FixedBasePoint.shared(2 * GENERATOR, Q)
        FixedBasePoint.shared(GENERATOR, Q, window_bits=2)
        FixedBaseGt.shared(GT_BASE, Q)
        assert shared_table_stats() == {"hits": 0, "misses": 4}

    def test_gt_table_memoized_and_correct(self):
        first = FixedBaseGt.shared(GT_BASE, Q)
        again = FixedBaseGt.shared(GT_BASE, Q)
        assert first is again
        assert first(12345) == GT_BASE ** (12345 % Q)

    def test_shared_matches_unshared(self):
        shared = FixedBasePoint.shared(GENERATOR, Q)
        plain = FixedBasePoint(GENERATOR, Q)
        for scalar in (0, 1, 777, Q - 1):
            assert shared(scalar) == plain(scalar)

    def test_clear_resets_memo_and_stats(self):
        FixedBasePoint.shared(GENERATOR, Q)
        clear_shared_tables()
        assert shared_table_stats() == {"hits": 0, "misses": 0}
        FixedBasePoint.shared(GENERATOR, Q)
        assert shared_table_stats() == {"hits": 0, "misses": 1}

    def test_build_is_invisible_to_active_profiler(self):
        # A memo hit skips the build, so the build itself must never
        # touch the active profiler — otherwise the first and second
        # same-seed runs of a process would produce different obs dumps.
        with profiled() as prof:
            FixedBaseGt.shared(GT_BASE, Q)
            FixedBasePoint.shared(GENERATOR, Q)
        assert prof.as_dict() == type(prof)().as_dict()
