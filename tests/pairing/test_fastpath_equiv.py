"""Golden equivalence: the projective fast path vs the legacy affine path.

Every optimisation in the PR keeps the *byte-identical output* contract:
Jacobian/wNAF scalar multiplication, the inversion-free Miller loop, the
fixed-argument Tate engine, the fixed-base window tables and the
identity-keyed cache must all produce exactly the values the original
affine code produces.  These tests pin that contract with Hypothesis
over the TOY64 group plus spot checks on TEST80.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ibe import CryptoCache, IbeKem, setup
from repro.mathlib.rand import HmacDrbg
from repro.pairing import FixedArgumentTate, batch_inverse, get_preset
from repro.pairing import curve as curve_mod
from repro.pairing.fast_tate import tate_pairing_fast
from repro.pairing.tate import tate_pairing

PARAMS = get_preset("TOY64")
Q = PARAMS.q
GENERATOR = PARAMS.generator

scalars = st.integers(0, 3 * Q)
small_scalars = st.integers(1, Q - 1)


def _pair_legacy(a, b):
    return tate_pairing(a, PARAMS.distort(b), Q, PARAMS.ext_curve)


def _pair_fast(a, b):
    return tate_pairing_fast(a, PARAMS.distort(b), Q, PARAMS.ext_curve)


class TestScalarMultiplication:
    @given(k=scalars)
    @settings(max_examples=60, deadline=None)
    def test_wnaf_matches_ladder(self, k):
        assert GENERATOR._mul_wnaf(k or 1) == GENERATOR._mul_ladder(k or 1)

    @given(k1=scalars, k2=scalars)
    @settings(max_examples=40, deadline=None)
    def test_mul_is_homomorphic(self, k1, k2):
        lhs = k1 * GENERATOR + k2 * GENERATOR
        rhs = ((k1 + k2) % Q) * GENERATOR
        assert lhs == rhs

    @given(k=scalars)
    @settings(max_examples=30, deadline=None)
    def test_global_ladder_switch(self, k):
        """curve.USE_WNAF = False must reroute without changing results."""
        fast = k * GENERATOR
        curve_mod.USE_WNAF = False
        try:
            assert k * GENERATOR == fast
        finally:
            curve_mod.USE_WNAF = True

    def test_order_two_point(self):
        """(x, 0) has order 2; large scalars route through _mul_wnaf."""
        point = PARAMS.curve.point(PARAMS.p - 1, 0)
        even = Q + 1  # Q is an odd prime, so Q + 1 is even
        assert (even * point).is_infinity()
        assert (even + 1) * point == point

    def test_negative_scalars(self):
        assert (-7) * GENERATOR == -(7 * GENERATOR)

    def test_double_matches_ladder_square(self):
        rng = HmacDrbg(b"dbl")
        for _ in range(5):
            point = PARAMS.curve.random_point(rng)
            assert point.double() == point._mul_ladder(2)


class TestBatchInverse:
    @given(values=st.lists(st.integers(1, PARAMS.p - 1), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_matches_individual_inverses(self, values):
        field = PARAMS.curve.field
        elements = [field(v) for v in values]
        batched = batch_inverse(elements)
        for element, inverse in zip(elements, batched):
            assert inverse == element.inverse()

    def test_zero_element_rejected(self):
        field = PARAMS.curve.field
        with pytest.raises(Exception):
            batch_inverse([field(1), field(0)])


class TestPairingEquivalence:
    @given(k1=small_scalars, k2=small_scalars)
    @settings(max_examples=25, deadline=None)
    def test_fast_tate_matches_legacy(self, k1, k2):
        a = k1 * GENERATOR
        b = k2 * GENERATOR
        assert _pair_fast(a, b) == _pair_legacy(a, b)

    @given(k=small_scalars)
    @settings(max_examples=20, deadline=None)
    def test_fixed_argument_engine_matches_legacy(self, k):
        base = 3 * GENERATOR
        engine = FixedArgumentTate(base, Q, PARAMS.ext_curve)
        other = k * GENERATOR
        assert engine(PARAMS.distort(other)) == _pair_legacy(base, other)

    def test_params_pair_routes_identically(self):
        a, b = 5 * GENERATOR, 11 * GENERATOR
        assert PARAMS.pair(a, b, fast=True) == PARAMS.pair(a, b, fast=False)

    def test_infinity_edge_cases(self):
        infinity = PARAMS.curve.infinity()
        one = PARAMS.ext_curve.field.one()
        assert PARAMS.pair(infinity, GENERATOR, fast=True) == one
        assert PARAMS.pair(GENERATOR, infinity, fast=True) == one

    def test_bilinearity_on_fast_path(self):
        g = PARAMS.pair(GENERATOR, GENERATOR, fast=True)
        assert PARAMS.pair(2 * GENERATOR, 3 * GENERATOR, fast=True) == g ** 6

    @pytest.mark.parametrize("preset", ["TOY64", "TEST80", "SMALL160"])
    def test_presets_byte_identical(self, preset):
        params = get_preset(preset)
        a = 7 * params.generator
        b = 13 * params.generator
        fast = params.pair(a, b, fast=True)
        legacy = params.pair(a, b, fast=False)
        assert fast.to_bytes() == legacy.to_bytes()

    @pytest.mark.slow
    @pytest.mark.parametrize("preset", ["MED256", "STD512"])
    def test_large_presets_byte_identical(self, preset):
        params = get_preset(preset)
        a = 1234567 * params.generator
        b = 7654321 * params.generator
        fast = params.pair(a, b, fast=True)
        legacy = params.pair(a, b, fast=False)
        assert fast.to_bytes() == legacy.to_bytes()
        engine = FixedArgumentTate(a, params.q, params.ext_curve)
        assert engine(params.distort(b)).to_bytes() == legacy.to_bytes()


#: One params object per (preset, backend) draw — building them once
#: keeps the Hypothesis examples fast and shares Montgomery contexts.
BACKEND_PARAMS = {
    (preset, backend): get_preset(preset, field_backend=backend)
    for preset in ("TOY64", "TEST80")
    for backend in ("schoolbook", "montgomery")
}
presets = st.sampled_from(["TOY64", "TEST80"])
backends = st.sampled_from(["schoolbook", "montgomery"])


class TestBackendEquivalence:
    """The field backend is an arithmetic strategy, never an output bit.

    Hypothesis draws the backend *per example*: whatever combination of
    preset, backend and scalars comes up, the pairing bytes must equal
    the schoolbook reference and the counter budget must be unchanged.
    """

    @given(preset=presets, backend=backends, k1=st.integers(1, 1 << 64),
           k2=st.integers(1, 1 << 64))
    @settings(max_examples=30, deadline=None)
    def test_pair_bytes_match_schoolbook_reference(self, preset, backend, k1, k2):
        params = BACKEND_PARAMS[(preset, backend)]
        reference = BACKEND_PARAMS[(preset, "schoolbook")]
        a, b = k1 % params.q or 1, k2 % params.q or 1
        value = params.pair(a * params.generator, b * params.generator)
        expected = reference.pair(
            a * reference.generator, b * reference.generator
        )
        assert value.to_bytes() == expected.to_bytes()

    @given(preset=presets, backend=backends, k=st.integers(0, 1 << 64))
    @settings(max_examples=30, deadline=None)
    def test_scalar_mult_and_to_bytes_round_trip(self, preset, backend, k):
        params = BACKEND_PARAMS[(preset, backend)]
        reference = BACKEND_PARAMS[(preset, "schoolbook")]
        point = k * params.generator
        assert point == k * reference.generator
        if not point.is_infinity():
            encoded = point.to_bytes()
            assert params.curve.from_bytes(encoded) == point
            assert encoded == (k * reference.generator).to_bytes()

    @given(preset=presets, backend=backends, k=st.integers(1, 1 << 64))
    @settings(max_examples=16, deadline=None)
    def test_fixed_argument_engine_backend_agnostic(self, preset, backend, k):
        params = BACKEND_PARAMS[(preset, backend)]
        reference = BACKEND_PARAMS[(preset, "schoolbook")]
        scalar = k % params.q or 1
        engine = FixedArgumentTate(
            7 * params.generator, params.q, params.ext_curve
        )
        value = engine(params.distort(scalar * params.generator))
        expected = reference.pair(
            7 * reference.generator, scalar * reference.generator
        )
        assert value.to_bytes() == expected.to_bytes()

    @given(backend=backends, k1=small_scalars, k2=small_scalars)
    @settings(max_examples=16, deadline=None)
    def test_inversion_budget_unchanged(self, backend, k1, k2):
        from repro.obs.crypto import profiled

        params = BACKEND_PARAMS[("TOY64", backend)]
        a, b = k1 * params.generator, k2 * params.generator
        with profiled() as ops:
            params.pair(a, b)
        assert ops.fp2_inv + ops.fp_inversions == 1

    @pytest.mark.parametrize("backend", ["schoolbook", "montgomery"])
    def test_kem_ciphertexts_identical_across_backends(self, backend):
        master = setup(
            "TOY64", rng=HmacDrbg(b"backend-master"), field_backend=backend
        )
        kem = IbeKem(master.public, rng=HmacDrbg(b"backend-kem"))
        r_p, key = kem.encapsulate(b"meter-9:attr", 16)
        reference = setup(
            "TOY64", rng=HmacDrbg(b"backend-master"),
            field_backend="schoolbook",
        )
        ref_kem = IbeKem(reference.public, rng=HmacDrbg(b"backend-kem"))
        ref_r_p, ref_key = ref_kem.encapsulate(b"meter-9:attr", 16)
        assert (r_p.to_bytes(), key) == (ref_r_p.to_bytes(), ref_key)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("preset", ["TOY64", "TEST80"])
    def test_kem_bytes_identical_cached_vs_legacy(self, preset):
        outputs = []
        for fast, cache in [(True, True), (True, False), (False, False)]:
            master = setup(preset, rng=HmacDrbg(b"equiv-master"))
            master.public.params.use_fast_path = fast
            if cache:
                master.public.cache = CryptoCache(16)
            kem = IbeKem(master.public, rng=HmacDrbg(b"equiv-kem"))
            r_p, key = kem.encapsulate(b"meter-7:attr", 16)
            outputs.append((r_p.to_bytes(), key))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_gt_power_matches_plain_power(self):
        master = setup("TOY64", rng=HmacDrbg(b"gp"))
        master.public.cache = CryptoCache(4)
        for r in (1, 2, Q - 1, 12345 % Q):
            via_table = master.public.gt_power(b"ident", r)
            plain = master.public.shared_gt(b"ident") ** r
            assert via_table == plain

    def test_mul_generator_matches_plain_mul(self):
        params = get_preset("TOY64")
        for k in (1, 2, Q - 1, Q + 7, 98765):
            assert params.mul_generator(k) == k * params.generator
        params.use_fast_path = False
        assert params.mul_generator(17) == 17 * params.generator
