"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.preset == "TEST80"
        assert args.cipher == "DES"

    def test_demo_rejects_unknown_cipher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--cipher", "ROT13"])


class TestCommands:
    def test_crypto_check_passes(self, capsys):
        assert main(["crypto-check"]) == 0
        output = capsys.readouterr().out
        assert "FAIL" not in output
        assert "pairing bilinearity" in output

    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "IDRC1     A1          1" in output
        assert "IDRC4     A4          5" in output

    def test_params_validates_preset(self, capsys):
        assert main(["params", "--preset", "TOY64"]) == 0
        assert "TOY64" in capsys.readouterr().out

    def test_params_generate(self, capsys):
        assert main(["params", "--generate", "--q-bits", "32",
                     "--p-bits", "72"]) == 0
        output = capsys.readouterr().out
        assert "validated: OK" in output

    def test_demo_end_to_end(self, capsys):
        assert main(["demo", "--preset", "TOY64", "--messages", "2"]) == 0
        output = capsys.readouterr().out
        assert output.count("deposited message") == 2
        assert output.count("decrypted") == 2
        assert "demo complete" in output

    def test_serve_for_a_moment(self, capsys):
        assert main(["serve", "--preset", "TOY64", "--duration", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "mws-sd" in output and "pkg" in output and "stopped" in output


class TestBenchScale:
    def run_scale(self, tmp_path, **overrides):
        out = tmp_path / "BENCH_scale.json"
        argv = [
            "bench", "scale", "--meters", "1", "--batch-size", "3",
            "--timing-batch", "4", "--page-size", "4",
            "--parallel-messages", "6",
            "--out", str(out),
        ]
        for flag, value in overrides.items():
            argv += [flag, str(value)]
        assert main(argv) == 0
        return json.loads(out.read_text())

    def test_scale_bench_writes_conserving_dump(self, tmp_path, capsys):
        dump = self.run_scale(tmp_path)
        assert dump["bench"] == "scale"
        assert dump["shards"]["conservation_ok"]
        assert dump["shards"]["sum"] == dump["deposits"]["accepted"] == 9
        assert dump["retrieval"]["complete"]
        assert dump["batch_timing"]["speedup"] > 0
        assert "accepted across 4 shards" in capsys.readouterr().out

    def test_scale_bench_deterministic_shard_assignment(self, tmp_path):
        first = self.run_scale(tmp_path, **{"--seed": "cli-det"})
        second = self.run_scale(tmp_path, **{"--seed": "cli-det"})
        assert first["shards"]["counts"] == second["shards"]["counts"]
        assert first["deposits"] == second["deposits"]


class TestBenchGate:
    BASELINE = {
        "bench": "scale",
        "batch_timing": {"speedup": 3.0},
        "parallel": {"speedup": 1.0},
    }

    def write(self, tmp_path, name, dump):
        path = tmp_path / name
        path.write_text(json.dumps(dump))
        return str(path)

    def test_within_budget_passes(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", self.BASELINE)
        cur = self.write(
            tmp_path, "cur.json", {"bench": "scale", "batch_timing": {"speedup": 2.4}, "parallel": {"speedup": 1.0}}
        )
        assert main(["bench-gate", base, cur]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", self.BASELINE)
        cur = self.write(
            tmp_path, "cur.json", {"bench": "scale", "batch_timing": {"speedup": 1.5}, "parallel": {"speedup": 1.0}}
        )
        assert main(["bench-gate", base, cur]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        base = self.write(tmp_path, "base.json", self.BASELINE)
        cur = self.write(
            tmp_path, "cur.json", {"bench": "scale", "batch_timing": {"speedup": 9.0}, "parallel": {"speedup": 1.0}}
        )
        assert main(["bench-gate", base, cur]) == 0

    def test_kind_mismatch_is_usage_error(self, tmp_path):
        base = self.write(tmp_path, "base.json", self.BASELINE)
        cur = self.write(tmp_path, "cur.json", {"bench": "pairing"})
        assert main(["bench-gate", base, cur]) == 2

    def test_missing_ratio_fails(self, tmp_path):
        base = self.write(tmp_path, "base.json", self.BASELINE)
        cur = self.write(tmp_path, "cur.json", {"bench": "scale"})
        assert main(["bench-gate", base, cur]) == 1

    PAIRING_DUMP = {
        "bench": "pairing",
        "pairing": {"speedup": 2.0},
        "deposit_phase": {"speedup": 1.6, "warm_speedup": 2.2},
        "backend": {"montgomery_speedup": 2.1},
    }
    PAIRING_OPCOUNTS = {
        "montgomery_fp_muls": 546,
        "montgomery_fp_sqrs": 128,
        "montgomery_fp_adds": 861,
        "montgomery_fp2_muls": 305,
        "schoolbook_fp_muls": 915,
        "schoolbook_fp_sqrs": 64,
        "schoolbook_fp_adds": 1891,
        "schoolbook_fp2_muls": 305,
    }

    def test_pairing_kind_gates_four_ratios(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", self.PAIRING_DUMP)
        cur = self.write(tmp_path, "cur.json", self.PAIRING_DUMP)
        assert main(["bench-gate", base, cur]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 4

    def test_backend_speedup_regression_fails(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", self.PAIRING_DUMP)
        cur_dump = json.loads(json.dumps(self.PAIRING_DUMP))
        cur_dump["backend"]["montgomery_speedup"] = 1.0
        cur = self.write(tmp_path, "cur.json", cur_dump)
        assert main(["bench-gate", base, cur]) == 1
        assert "backend.montgomery_speedup" in capsys.readouterr().out

    def test_opcount_budget_within_ceiling_passes(self, tmp_path, capsys):
        dump = dict(self.PAIRING_DUMP, opcounts=self.PAIRING_OPCOUNTS)
        base = self.write(tmp_path, "base.json", dump)
        cur = self.write(tmp_path, "cur.json", dump)
        assert main(["bench-gate", base, cur, "--only", "budgets"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 8
        assert "speedup" not in out

    def test_opcount_budget_regression_fails(self, tmp_path, capsys):
        base_dump = dict(self.PAIRING_DUMP, opcounts=self.PAIRING_OPCOUNTS)
        cur_dump = json.loads(json.dumps(base_dump))
        cur_dump["opcounts"]["montgomery_fp_muls"] = 900
        base = self.write(tmp_path, "base.json", base_dump)
        cur = self.write(tmp_path, "cur.json", cur_dump)
        assert main(["bench-gate", base, cur, "--only", "budgets"]) == 1
        assert "opcounts.montgomery_fp_muls" in capsys.readouterr().out

    def test_budget_gate_skips_pre_v2_baseline(self, tmp_path, capsys):
        # A baseline without opcounts (schema v1) must not fail the
        # budget gate — the regenerated baseline arms it.
        base = self.write(tmp_path, "base.json", self.PAIRING_DUMP)
        cur = self.write(
            tmp_path, "cur.json",
            dict(self.PAIRING_DUMP, opcounts=self.PAIRING_OPCOUNTS),
        )
        assert main(["bench-gate", base, cur, "--only", "budgets"]) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_only_ratios_ignores_budget_regression(self, tmp_path):
        base_dump = dict(self.PAIRING_DUMP, opcounts=self.PAIRING_OPCOUNTS)
        cur_dump = json.loads(json.dumps(base_dump))
        cur_dump["opcounts"]["montgomery_fp_adds"] = 5000
        base = self.write(tmp_path, "base.json", base_dump)
        cur = self.write(tmp_path, "cur.json", cur_dump)
        assert main(["bench-gate", base, cur, "--only", "ratios"]) == 0
        assert main(["bench-gate", base, cur, "--only", "budgets"]) == 1
