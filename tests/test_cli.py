"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.preset == "TEST80"
        assert args.cipher == "DES"

    def test_demo_rejects_unknown_cipher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--cipher", "ROT13"])


class TestCommands:
    def test_crypto_check_passes(self, capsys):
        assert main(["crypto-check"]) == 0
        output = capsys.readouterr().out
        assert "FAIL" not in output
        assert "pairing bilinearity" in output

    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "IDRC1     A1          1" in output
        assert "IDRC4     A4          5" in output

    def test_params_validates_preset(self, capsys):
        assert main(["params", "--preset", "TOY64"]) == 0
        assert "TOY64" in capsys.readouterr().out

    def test_params_generate(self, capsys):
        assert main(["params", "--generate", "--q-bits", "32",
                     "--p-bits", "72"]) == 0
        output = capsys.readouterr().out
        assert "validated: OK" in output

    def test_demo_end_to_end(self, capsys):
        assert main(["demo", "--preset", "TOY64", "--messages", "2"]) == 0
        output = capsys.readouterr().out
        assert output.count("deposited message") == 2
        assert output.count("decrypted") == 2
        assert "demo complete" in output

    def test_serve_for_a_moment(self, capsys):
        assert main(["serve", "--preset", "TOY64", "--duration", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "mws-sd" in output and "pkg" in output and "stopped" in output
