"""CryptoCache behaviour: LRU bounds, counters, invalidation semantics."""

import pytest

from repro.errors import ParameterError
from repro.ibe import CryptoCache, setup
from repro.ibe.keys import PublicParams
from repro.mathlib.rand import HmacDrbg
from repro.obs.crypto import profiled
from repro.pairing.hashing import hash_to_point


def _master(preset="TOY64", seed=b"cache-master"):
    return setup(preset, rng=HmacDrbg(seed))


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            CryptoCache(0)
        with pytest.raises(ParameterError):
            CryptoCache(-3)

    def test_h1_matches_uncached_hash(self):
        master = _master()
        cache = CryptoCache(8)
        point = cache.h1_point(master.public, b"ident-a")
        assert point == hash_to_point(master.public.params, b"ident-a")

    def test_shared_gt_matches_uncached_pairing(self):
        master = _master()
        cache = CryptoCache(8)
        value = cache.shared_gt(master.public, b"ident-a")
        q_id = hash_to_point(master.public.params, b"ident-a")
        assert value == master.public.pair(q_id, master.public.p_pub)

    def test_weil_algorithm_bypasses_tate_engine(self):
        """The cache must serve Weil deployments Weil values (regression:
        the fixed-argument engine is Tate-specific)."""
        master = setup(
            "TOY64", rng=HmacDrbg(b"weil"), pairing_algorithm="weil"
        )
        cache = CryptoCache(8)
        value = cache.shared_gt(master.public, b"a")
        q_id = hash_to_point(master.public.params, b"a")
        assert value == master.public.pair(q_id, master.public.p_pub)
        assert cache.shared_gt(master.public, b"a") == value
        assert cache.pairing_hits == 1

    def test_repr_and_stats(self):
        master = _master()
        cache = CryptoCache(8)
        cache.shared_gt(master.public, b"x")
        stats = cache.stats()
        assert stats["pairing_misses"] == 1
        assert stats["h1_misses"] == 1
        assert stats["capacity"] == 8
        assert "CryptoCache" in repr(cache)


class TestHitMissAccounting:
    def test_counters_and_obs_export(self):
        master = _master()
        cache = CryptoCache(8)
        with profiled() as ops:
            cache.shared_gt(master.public, b"a")  # miss (h1 miss too)
            cache.shared_gt(master.public, b"a")  # hit
            cache.shared_gt(master.public, b"a")  # hit
        assert cache.pairing_misses == 1
        assert cache.pairing_hits == 2
        assert ops.cache_pairing_miss == 1
        assert ops.cache_pairing_hit == 2
        exported = ops.as_dict()
        assert exported["crypto.cache.pairing.hit"] == 2
        assert exported["crypto.cache.pairing.miss"] == 1
        assert exported["crypto.cache.h1.miss"] == 1

    def test_h1_layer_counts_independently(self):
        master = _master()
        cache = CryptoCache(8)
        cache.h1_point(master.public, b"a")
        cache.h1_point(master.public, b"a")
        assert cache.h1_misses == 1
        assert cache.h1_hits == 1


class TestLruBound:
    def test_capacity_is_enforced(self):
        master = _master()
        cache = CryptoCache(2)
        for name in (b"a", b"b", b"c", b"d"):
            cache.shared_gt(master.public, name)
        stats = cache.stats()
        assert stats["h1_size"] == 2
        assert stats["pairing_size"] == 2

    def test_least_recently_used_is_evicted(self):
        master = _master()
        cache = CryptoCache(2)
        cache.shared_gt(master.public, b"a")
        cache.shared_gt(master.public, b"b")
        cache.shared_gt(master.public, b"a")  # refresh a; b is now LRU
        cache.shared_gt(master.public, b"c")  # evicts b
        hits_before = cache.pairing_hits
        cache.shared_gt(master.public, b"a")
        assert cache.pairing_hits == hits_before + 1
        misses_before = cache.pairing_misses
        cache.shared_gt(master.public, b"b")
        assert cache.pairing_misses == misses_before + 1


class TestInvalidation:
    def test_p_pub_rotation_clears_gt_keeps_h1(self):
        master = _master()
        cache = CryptoCache(8)
        cache.shared_gt(master.public, b"a")
        assert cache.stats()["pairing_size"] == 1
        rotated = PublicParams(
            params=master.public.params, p_pub=2 * master.public.p_pub
        )
        value = cache.shared_gt(rotated, b"a")
        assert cache.invalidations == 1
        # The fresh value reflects the rotated key...
        q_id = hash_to_point(master.public.params, b"a")
        assert value == master.public.params.pair(q_id, rotated.p_pub)
        # ...and the H1 layer survived the rotation (hit, not miss).
        assert cache.h1_hits >= 1

    def test_group_change_clears_everything(self):
        master_a = _master("TOY64")
        master_b = _master("TEST80", seed=b"other-group")
        cache = CryptoCache(8)
        cache.shared_gt(master_a.public, b"a")
        cache.shared_gt(master_b.public, b"a")
        assert cache.invalidations == 1
        assert cache.stats()["h1_size"] == 1  # only the new group's entry

    def test_explicit_clear(self):
        master = _master()
        cache = CryptoCache(8)
        cache.gt_power(master.public, b"a", 5)
        cache.clear()
        stats = cache.stats()
        assert stats["h1_size"] == 0
        assert stats["pairing_size"] == 0

    def test_rotation_invalidates_power_tables(self):
        master = _master()
        cache = CryptoCache(8)
        before = cache.gt_power(master.public, b"a", 9)
        rotated = PublicParams(
            params=master.public.params, p_pub=3 * master.public.p_pub
        )
        after = cache.gt_power(rotated, b"a", 9)
        assert after != before
        assert after == cache.shared_gt(rotated, b"a") ** 9


class TestGtPower:
    def test_matches_plain_exponentiation(self):
        master = _master()
        master.public.cache = CryptoCache(8)
        reference = setup("TOY64", rng=HmacDrbg(b"cache-master"))
        q = master.public.params.q
        for exponent in (1, 2, q - 1, 777 % q):
            cached = master.public.gt_power(b"ident", exponent)
            plain = reference.public.shared_gt(b"ident") ** exponent
            assert cached == plain

    def test_power_table_is_bounded(self):
        master = _master()
        cache = CryptoCache(2)
        for name in (b"a", b"b", b"c"):
            cache.gt_power(master.public, name, 3)
        assert len(cache._gt_pow) <= 2
