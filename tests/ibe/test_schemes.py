"""BasicIdent, FullIdent and the key-material layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecryptionError, ParameterError
from repro.ibe import BasicIdent, FullIdent, setup
from repro.ibe.basic_ident import BasicCiphertext
from repro.ibe.full_ident import FullCiphertext
from repro.ibe.keys import IdentityPrivateKey, PublicParams
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset


@pytest.fixture(scope="module")
def master():
    return setup("TOY64", rng=HmacDrbg(b"master"))


@pytest.fixture()
def drbg():
    return HmacDrbg(b"scheme-rng")


class TestSetup:
    def test_p_pub_is_s_times_generator(self, master):
        params = master.public.params
        assert master.public.p_pub == master.master_secret * params.generator

    def test_accepts_params_object(self):
        params = get_preset("TOY64")
        keypair = setup(params, rng=HmacDrbg(b"x"))
        assert keypair.public.params is params

    def test_rejects_garbage_preset(self):
        with pytest.raises(ParameterError):
            setup(12345)

    def test_master_secret_in_range(self, master):
        assert 1 <= master.master_secret < master.public.params.q

    def test_deterministic_with_seeded_rng(self):
        a = setup("TOY64", rng=HmacDrbg(b"same"))
        b = setup("TOY64", rng=HmacDrbg(b"same"))
        assert a.master_secret == b.master_secret


class TestExtract:
    def test_private_key_is_s_times_hash(self, master):
        key = master.extract(b"identity-alpha")
        q_point = master.public.hash_identity(b"identity-alpha")
        assert key.point == master.master_secret * q_point

    def test_extract_deterministic(self, master):
        assert master.extract(b"id").point == master.extract(b"id").point

    def test_extract_point_matches_extract(self, master):
        q_point = master.public.hash_identity(b"id-x")
        assert master.extract_point(q_point) == master.extract(b"id-x").point

    def test_private_key_serialisation(self, master):
        key = master.extract(b"serial-me")
        rebuilt = IdentityPrivateKey.from_bytes(
            key.to_bytes(), master.public.params
        )
        assert rebuilt.identity == b"serial-me"
        assert rebuilt.point == key.point


class TestPublicParamsSerialisation:
    def test_roundtrip(self, master):
        rebuilt = PublicParams.from_bytes(master.public.to_bytes())
        assert rebuilt.p_pub == master.public.p_pub
        assert rebuilt.params.p == master.public.params.p
        assert rebuilt.params.q == master.public.params.q
        assert rebuilt.params.generator == master.public.params.generator

    def test_roundtrip_preserves_pairing_algorithm(self):
        keypair = setup(
            get_preset("TOY64", pairing_algorithm="weil"), rng=HmacDrbg(b"w")
        )
        rebuilt = PublicParams.from_bytes(keypair.public.to_bytes())
        assert rebuilt.params.pairing_algorithm == "weil"

    def test_cross_party_interop(self, master):
        """A device that only ever saw the serialised params must produce
        ciphertexts the original master's extracts can decrypt."""
        device_view = PublicParams.from_bytes(master.public.to_bytes())
        encryptor = BasicIdent(device_view, rng=HmacDrbg(b"dev"))
        ciphertext = encryptor.encrypt(b"shared-id", b"interop works")
        decryptor = BasicIdent(master.public)
        assert decryptor.decrypt(master.extract(b"shared-id"), ciphertext) == (
            b"interop works"
        )


class TestBasicIdent:
    @given(message=st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, master, message):
        scheme = BasicIdent(master.public, rng=HmacDrbg(message + b"r"))
        ciphertext = scheme.encrypt(b"round-trip-id", message)
        assert scheme.decrypt(master.extract(b"round-trip-id"), ciphertext) == message

    def test_wrong_identity_garbles(self, master, drbg):
        scheme = BasicIdent(master.public, rng=drbg)
        ciphertext = scheme.encrypt(b"intended", b"sensitive reading")
        wrong = scheme.decrypt(master.extract(b"interloper"), ciphertext)
        assert wrong != b"sensitive reading"

    def test_randomised_encryption(self, master, drbg):
        scheme = BasicIdent(master.public, rng=drbg)
        first = scheme.encrypt(b"id", b"same message")
        second = scheme.encrypt(b"id", b"same message")
        assert first.u != second.u
        assert first.v != second.v

    def test_ciphertext_roundtrip_bytes(self, master, drbg):
        scheme = BasicIdent(master.public, rng=drbg)
        ciphertext = scheme.encrypt(b"id", b"serialise me")
        rebuilt = BasicCiphertext.from_bytes(
            ciphertext.to_bytes(), master.public.params
        )
        assert rebuilt.u == ciphertext.u
        assert rebuilt.v == ciphertext.v

    def test_empty_message(self, master, drbg):
        scheme = BasicIdent(master.public, rng=drbg)
        ciphertext = scheme.encrypt(b"id", b"")
        assert scheme.decrypt(master.extract(b"id"), ciphertext) == b""


class TestFullIdent:
    @given(message=st.binary(max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, master, message):
        scheme = FullIdent(master.public, rng=HmacDrbg(message + b"f"))
        ciphertext = scheme.encrypt(b"cca-id", message)
        assert scheme.decrypt(master.extract(b"cca-id"), ciphertext) == message

    def test_wrong_identity_rejected(self, master, drbg):
        scheme = FullIdent(master.public, rng=drbg)
        ciphertext = scheme.encrypt(b"right-id", b"msg")
        with pytest.raises(DecryptionError):
            scheme.decrypt(master.extract(b"wrong-id"), ciphertext)

    @pytest.mark.parametrize("component", ["u", "v", "w"])
    def test_any_component_tamper_rejected(self, master, drbg, component):
        scheme = FullIdent(master.public, rng=drbg)
        ciphertext = scheme.encrypt(b"id", b"integrity matters here")
        if component == "u":
            # Replace U with a different valid point.
            ciphertext.u = 2 * ciphertext.u
        elif component == "v":
            ciphertext.v = bytes([ciphertext.v[0] ^ 1]) + ciphertext.v[1:]
        else:
            ciphertext.w = bytes([ciphertext.w[0] ^ 1]) + ciphertext.w[1:]
        with pytest.raises(DecryptionError):
            scheme.decrypt(master.extract(b"id"), ciphertext)

    def test_bad_sigma_length_rejected(self, master):
        ciphertext = FullCiphertext(
            u=master.public.params.generator, v=b"short", w=b"x"
        )
        with pytest.raises(DecryptionError):
            FullIdent(master.public).decrypt(master.extract(b"id"), ciphertext)

    def test_serialisation_roundtrip(self, master, drbg):
        scheme = FullIdent(master.public, rng=drbg)
        ciphertext = scheme.encrypt(b"id", b"bytes on the wire")
        rebuilt = FullCiphertext.from_bytes(
            ciphertext.to_bytes(), master.public.params
        )
        assert scheme.decrypt(master.extract(b"id"), rebuilt) == b"bytes on the wire"
