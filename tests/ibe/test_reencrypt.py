"""The re-encryption wrap format (repro.ibe.reencrypt)."""

import pytest

from repro.core.conventions import identity_string
from repro.errors import CiphertextFormatError, DecodeError, DecryptionError
from repro.ibe.kem import HybridCiphertext, hybrid_decrypt, hybrid_encrypt
from repro.ibe.reencrypt import (
    WRAP_MAGIC,
    is_wrapped,
    parse_wrap,
    unwrap_layer,
    wrap,
)

ATTRIBUTE = "REWRAP-ATTR"
NONCE = b"rewrap-nonce-01"
PAYLOAD = b"reading=42.0kWh;rewrap"


def _extract(master, epoch: int):
    identity = identity_string(ATTRIBUTE, NONCE, epoch)
    return master.extract_point(master.public.hash_identity(identity))


def _base_ciphertext(master, rng) -> bytes:
    """An ordinary epoch-0 deposit ciphertext (the innermost bytes)."""
    return hybrid_encrypt(
        master.public,
        identity_string(ATTRIBUTE, NONCE, 0),
        PAYLOAD,
        cipher_name="AES-128",
        rng=rng,
    ).to_bytes()


def _wrap_to(master, rng, ciphertext: bytes, outer: int, inner: int) -> bytes:
    return wrap(
        master.public,
        ATTRIBUTE,
        NONCE,
        ciphertext,
        outer_epoch=outer,
        inner_epoch=inner,
        identity=identity_string(ATTRIBUTE, NONCE, outer),
        rng=rng,
    )


class TestWrapFormat:
    def test_single_layer_round_trip(self, master_keypair, rng):
        base = _base_ciphertext(master_keypair, rng)
        assert not is_wrapped(base)
        wrapped = _wrap_to(master_keypair, rng, base, outer=1, inner=0)
        assert is_wrapped(wrapped)
        assert wrapped.startswith(WRAP_MAGIC)
        outer, inner, sealed = parse_wrap(wrapped)
        assert (outer, inner) == (1, 0)
        assert sealed  # the sealed blob is the whole remainder

        epoch, recovered = unwrap_layer(
            master_keypair.public, _extract(master_keypair, 1), wrapped
        )
        assert epoch == 0
        assert recovered == base
        plaintext = hybrid_decrypt(
            master_keypair.public,
            _extract(master_keypair, 0),
            HybridCiphertext.from_bytes(recovered, master_keypair.public.params),
        )
        assert plaintext == PAYLOAD

    def test_layers_nest_and_peel_outermost_in(self, master_keypair, rng):
        base = _base_ciphertext(master_keypair, rng)
        once = _wrap_to(master_keypair, rng, base, outer=1, inner=0)
        twice = _wrap_to(master_keypair, rng, once, outer=3, inner=1)

        # Each layer's header names the key that opens it.
        assert parse_wrap(twice)[:2] == (3, 1)
        epoch, inner_bytes = unwrap_layer(
            master_keypair.public, _extract(master_keypair, 3), twice
        )
        assert epoch == 1
        assert inner_bytes == once
        epoch, innermost = unwrap_layer(
            master_keypair.public, _extract(master_keypair, 1), inner_bytes
        )
        assert epoch == 0
        assert innermost == base

    def test_parse_rejects_non_wrap(self, master_keypair, rng):
        base = _base_ciphertext(master_keypair, rng)
        with pytest.raises(CiphertextFormatError):
            parse_wrap(base)
        with pytest.raises(DecodeError):
            parse_wrap(WRAP_MAGIC)  # magic with a truncated body

    def test_wrong_epoch_key_fails_closed(self, master_keypair, rng):
        base = _base_ciphertext(master_keypair, rng)
        wrapped = _wrap_to(master_keypair, rng, base, outer=1, inner=0)
        with pytest.raises(DecryptionError):
            unwrap_layer(
                master_keypair.public, _extract(master_keypair, 2), wrapped
            )

    def test_epoch_identities_are_distinct(self):
        legacy = identity_string(ATTRIBUTE, NONCE)
        assert identity_string(ATTRIBUTE, NONCE, 0) == legacy
        assert identity_string(ATTRIBUTE, NONCE, 1) != legacy
        assert identity_string(ATTRIBUTE, NONCE, 1) != identity_string(
            ATTRIBUTE, NONCE, 2
        )
        # The epoch suffix extends the legacy string, never mutates it.
        assert identity_string(ATTRIBUTE, NONCE, 7).startswith(legacy)
