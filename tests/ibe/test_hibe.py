"""Hierarchical IBE (Gentry–Silverberg) over the warehouse's domains."""

import pytest

from repro.errors import DecryptionError, ParameterError
from repro.ibe.hibe import HibePrivateKey, HibeRoot
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset

PARAMS = get_preset("TOY64")
PATH = ("REGION-SV", "GLENBROOK", "ELECTRIC")


@pytest.fixture(scope="module")
def root():
    return HibeRoot(PARAMS, rng=HmacDrbg(b"hibe-tests"))


@pytest.fixture(scope="module")
def region(root):
    return root.domain("REGION-SV")


@pytest.fixture(scope="module")
def complex_domain(region):
    return region.domain("GLENBROOK")


class TestRoundtrips:
    def test_depth_1(self, root):
        key = root.extract("REGION-SV")
        ciphertext = root.encrypt(("REGION-SV",), b"d1", rng=HmacDrbg(b"1"))
        assert root.decrypt(key, ciphertext) == b"d1"

    def test_depth_2_via_delegation(self, root, region):
        key = region.extract("GLENBROOK")
        ciphertext = root.encrypt(PATH[:2], b"d2", rng=HmacDrbg(b"2"))
        assert root.decrypt(key, ciphertext) == b"d2"

    def test_depth_3(self, root, complex_domain):
        key = complex_domain.extract("ELECTRIC")
        ciphertext = root.encrypt(PATH, b"d3", rng=HmacDrbg(b"3"))
        assert root.decrypt(key, ciphertext) == b"d3"

    def test_extract_path_shortcut(self, root, region):
        key = region.extract_path(["GLENBROOK", "ELECTRIC"])
        ciphertext = root.encrypt(PATH, b"shortcut", rng=HmacDrbg(b"4"))
        assert root.decrypt(key, ciphertext) == b"shortcut"

    def test_list_path_accepted(self, root):
        key = root.extract("REGION-SV")
        ciphertext = root.encrypt(["REGION-SV"], b"list", rng=HmacDrbg(b"5"))
        assert root.decrypt(key, ciphertext) == b"list"

    def test_large_message(self, root, complex_domain):
        key = complex_domain.extract("ELECTRIC")
        blob = bytes(range(256)) * 8
        ciphertext = root.encrypt(PATH, blob, rng=HmacDrbg(b"6"))
        assert root.decrypt(key, ciphertext) == blob


class TestIsolation:
    def test_sibling_cannot_decrypt(self, root, complex_domain):
        water_key = complex_domain.extract("WATER")
        ciphertext = root.encrypt(PATH, b"electric only", rng=HmacDrbg(b"7"))
        with pytest.raises(DecryptionError):
            root.decrypt(water_key, ciphertext)

    def test_other_region_cannot_decrypt(self, root):
        ny = root.domain("REGION-NY")
        key = ny.extract_path(["GLENBROOK", "ELECTRIC"])
        ciphertext = root.encrypt(PATH, b"sv only", rng=HmacDrbg(b"8"))
        with pytest.raises(DecryptionError):
            root.decrypt(key, ciphertext)

    def test_depth_mismatch_rejected(self, root, region):
        shallow_key = root.extract("REGION-SV")
        deep_ciphertext = root.encrypt(PATH, b"deep", rng=HmacDrbg(b"9"))
        with pytest.raises(DecryptionError):
            root.decrypt(shallow_key, deep_ciphertext)

    def test_independent_roots_incompatible(self):
        root_a = HibeRoot(PARAMS, rng=HmacDrbg(b"root-a"))
        root_b = HibeRoot(PARAMS, rng=HmacDrbg(b"root-b"))
        key = root_a.extract("X")
        ciphertext = root_b.encrypt(("X",), b"m", rng=HmacDrbg(b"10"))
        with pytest.raises(DecryptionError):
            root_b.decrypt(key, ciphertext)

    def test_path_framing_unambiguous(self, root):
        """('AB','C') and ('A','BC') must be different targets."""
        region_ab = root.domain("AB")
        key = region_ab.extract("C")
        ciphertext = root.encrypt(("A", "BC"), b"m", rng=HmacDrbg(b"11"))
        with pytest.raises(DecryptionError):
            root.decrypt(key, ciphertext)

    def test_delegation_never_exposes_ancestor_secrets(self, root, region):
        """The domain object holds its own secret only; the root's s0
        stays with the root (structural check)."""
        assert not hasattr(region, "_s0")
        assert region.key.identity_path == ("REGION-SV",)


class TestMisc:
    def test_empty_path_rejected(self, root):
        with pytest.raises(ParameterError):
            root.encrypt((), b"m")

    def test_key_serialisation(self, root, complex_domain):
        key = complex_domain.extract("ELECTRIC")
        rebuilt = HibePrivateKey.from_bytes(key.to_bytes(), PARAMS)
        assert rebuilt.identity_path == key.identity_path
        ciphertext = root.encrypt(PATH, b"serialised", rng=HmacDrbg(b"12"))
        assert root.decrypt(rebuilt, ciphertext) == b"serialised"

    def test_randomised_encryption(self, root):
        first = root.encrypt(("X",), b"same")
        second = root.encrypt(("X",), b"same")
        assert first.u0 != second.u0

    def test_tampered_body_rejected(self, root):
        key = root.extract("X")
        ciphertext = root.encrypt(("X",), b"m", rng=HmacDrbg(b"13"))
        mutated = bytearray(ciphertext.sealed)
        mutated[-1] ^= 1
        ciphertext.sealed = bytes(mutated)
        with pytest.raises(DecryptionError):
            root.decrypt(key, ciphertext)
