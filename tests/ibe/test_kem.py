"""The IBE-KEM and hybrid construction (the protocol's §V.D encryption)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecryptionError
from repro.ibe import IbeKem, hybrid_decrypt, hybrid_encrypt, setup
from repro.ibe.kem import HybridCiphertext
from repro.mathlib.rand import HmacDrbg


@pytest.fixture(scope="module")
def master():
    return setup("TOY64", rng=HmacDrbg(b"kem-master"))


class TestKem:
    def test_encapsulate_decapsulate_agree(self, master):
        kem = IbeKem(master.public, rng=HmacDrbg(b"k"))
        r_p, key = kem.encapsulate(b"attr|nonce", 16)
        private_point = master.extract(b"attr|nonce").point
        assert kem.decapsulate(private_point, r_p, 16) == key

    def test_wrong_identity_key_differs(self, master):
        kem = IbeKem(master.public, rng=HmacDrbg(b"k"))
        r_p, key = kem.encapsulate(b"attr-a", 16)
        wrong_point = master.extract(b"attr-b").point
        assert kem.decapsulate(wrong_point, r_p, 16) != key

    def test_fresh_randomness_per_encapsulation(self, master):
        kem = IbeKem(master.public, rng=HmacDrbg(b"k"))
        first = kem.encapsulate(b"id", 16)
        second = kem.encapsulate(b"id", 16)
        assert first[0] != second[0]
        assert first[1] != second[1]

    def test_key_length_honoured(self, master):
        kem = IbeKem(master.public, rng=HmacDrbg(b"k"))
        for length in (8, 16, 24, 32):
            _, key = kem.encapsulate(b"id", length)
            assert len(key) == length

    def test_kem_key_prefix_consistency(self, master):
        """Same encapsulation, different lengths: KDF prefix property."""
        kem = IbeKem(master.public, rng=HmacDrbg(b"k"))
        r_p, _ = kem.encapsulate(b"id", 8)
        private_point = master.extract(b"id").point
        short = kem.decapsulate(private_point, r_p, 8)
        long = kem.decapsulate(private_point, r_p, 32)
        assert long[:8] == short


class TestHybrid:
    @pytest.mark.parametrize("cipher_name", ["DES", "3DES", "AES-128", "AES-256"])
    def test_roundtrip_all_ciphers(self, master, cipher_name):
        message = b"meter reading 42.7 kWh at 10:15" * 4
        ciphertext = hybrid_encrypt(
            master.public, b"ELECTRIC-X", message,
            cipher_name=cipher_name, rng=HmacDrbg(b"h"),
        )
        private_point = master.extract(b"ELECTRIC-X").point
        assert hybrid_decrypt(master.public, private_point, ciphertext) == message

    @given(message=st.binary(max_size=500))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_arbitrary_messages(self, master, message):
        ciphertext = hybrid_encrypt(
            master.public, b"any-id", message, rng=HmacDrbg(message + b"!")
        )
        private_point = master.extract(b"any-id").point
        assert hybrid_decrypt(master.public, private_point, ciphertext) == message

    def test_wrong_key_rejected(self, master):
        ciphertext = hybrid_encrypt(
            master.public, b"intended-attr", b"secret", rng=HmacDrbg(b"h")
        )
        wrong_point = master.extract(b"other-attr").point
        with pytest.raises(DecryptionError):
            hybrid_decrypt(master.public, wrong_point, ciphertext)

    def test_sealed_body_tamper_rejected(self, master):
        ciphertext = hybrid_encrypt(
            master.public, b"attr", b"secret", rng=HmacDrbg(b"h")
        )
        mutated = bytearray(ciphertext.sealed)
        mutated[len(mutated) // 2] ^= 1
        ciphertext.sealed = bytes(mutated)
        private_point = master.extract(b"attr").point
        with pytest.raises(DecryptionError):
            hybrid_decrypt(master.public, private_point, ciphertext)

    def test_transported_point_tamper_rejected(self, master):
        ciphertext = hybrid_encrypt(
            master.public, b"attr", b"secret", rng=HmacDrbg(b"h")
        )
        ciphertext.r_p = 2 * ciphertext.r_p
        private_point = master.extract(b"attr").point
        with pytest.raises(DecryptionError):
            hybrid_decrypt(master.public, private_point, ciphertext)

    def test_serialisation_roundtrip(self, master):
        ciphertext = hybrid_encrypt(
            master.public, b"attr", b"wire bytes", rng=HmacDrbg(b"h")
        )
        rebuilt = HybridCiphertext.from_bytes(
            ciphertext.to_bytes(), master.public.params
        )
        assert rebuilt.cipher_name == ciphertext.cipher_name
        private_point = master.extract(b"attr").point
        assert hybrid_decrypt(master.public, private_point, rebuilt) == b"wire bytes"

    def test_ciphertext_never_contains_plaintext(self, master):
        message = b"THE-PLAINTEXT-MARKER-0123456789"
        ciphertext = hybrid_encrypt(
            master.public, b"attr", message, rng=HmacDrbg(b"h")
        )
        assert message not in ciphertext.to_bytes()
