"""PEKS: encrypted keyword search (paper reference [1])."""

import pytest

from repro.errors import DecodeError
from repro.ibe.peks import PeksScheme, PeksTag, PeksTrapdoor, SearchableIndex
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset

PARAMS = get_preset("TOY64")


@pytest.fixture()
def scheme():
    return PeksScheme.generate(PARAMS, rng=HmacDrbg(b"peks"))


class TestPrimitive:
    def test_matching_keyword_tests_true(self, scheme):
        tag = scheme.tag("outage")
        assert scheme.test(scheme.trapdoor("outage"), tag)

    def test_non_matching_keyword_tests_false(self, scheme):
        tag = scheme.tag("outage")
        assert not scheme.test(scheme.trapdoor("billing"), tag)

    def test_keyword_normalisation(self, scheme):
        """'  OUTAGE ' and 'outage' are the same keyword."""
        tag = scheme.tag("  OUTAGE ")
        assert scheme.test(scheme.trapdoor("outage"), tag)

    def test_tags_are_randomised(self, scheme):
        first = scheme.tag("outage")
        second = scheme.tag("outage")
        assert first.point != second.point
        assert first.check != second.check
        trapdoor = scheme.trapdoor("outage")
        assert scheme.test(trapdoor, first) and scheme.test(trapdoor, second)

    def test_public_side_cannot_derive_trapdoors(self, scheme):
        tagger = PeksScheme(PARAMS, public_point=scheme.public_point,
                            rng=HmacDrbg(b"tagger"))
        tag = tagger.tag("outage")
        assert scheme.test(scheme.trapdoor("outage"), tag)
        with pytest.raises(DecodeError):
            tagger.trapdoor("outage")

    def test_trapdoor_from_other_secret_fails(self):
        alice = PeksScheme.generate(PARAMS, rng=HmacDrbg(b"alice"))
        mallory = PeksScheme.generate(PARAMS, rng=HmacDrbg(b"mallory"))
        tag = alice.tag("outage")
        assert not alice.test(mallory.trapdoor("outage"), tag)

    def test_serialisation_roundtrips(self, scheme):
        tag = scheme.tag("kw")
        trapdoor = scheme.trapdoor("kw")
        tag2 = PeksTag.from_bytes(tag.to_bytes(), PARAMS)
        trapdoor2 = PeksTrapdoor.from_bytes(trapdoor.to_bytes(), PARAMS)
        assert scheme.test(trapdoor2, tag2)

    def test_construction_requires_key_material(self):
        with pytest.raises(DecodeError):
            PeksScheme(PARAMS)


class TestSearchableIndex:
    def test_search_returns_matching_records(self, scheme):
        index = SearchableIndex(scheme)
        index.add(1, scheme.tag_all(["outage", "voltage"]))
        index.add(2, scheme.tag_all(["billing"]))
        index.add(3, scheme.tag_all(["outage"]))
        assert index.search(scheme.trapdoor("outage")) == [1, 3]
        assert index.search(scheme.trapdoor("billing")) == [2]
        assert index.search(scheme.trapdoor("nothing")) == []

    def test_tags_reveal_no_keywords(self, scheme):
        """The stored bytes contain neither keyword text nor stable
        per-keyword values (randomised tags)."""
        tags = scheme.tag_all(["outage", "outage"])
        blob = b"".join(tag.to_bytes() for tag in tags)
        assert b"outage" not in blob
        assert tags[0].to_bytes() != tags[1].to_bytes()

    def test_stats(self, scheme):
        index = SearchableIndex(scheme)
        index.add(1, scheme.tag_all(["a", "b"]))
        assert index.stats["tags_stored"] == 2
        index.search(scheme.trapdoor("zzz"))
        assert index.stats["tests_run"] == 2
        assert len(index) == 1

    def test_short_circuit_on_first_match(self, scheme):
        index = SearchableIndex(scheme)
        index.add(1, scheme.tag_all(["a", "a", "a"]))
        index.search(scheme.trapdoor("a"))
        assert index.stats["tests_run"] == 1


class TestWarehouseIntegration:
    def test_search_then_decrypt_flow(self, deployment):
        """The intended deployment shape: the SD tags deposits, the MWS
        indexes tags, an RC searches by trapdoor then decrypts only the
        hits — the MWS learns match/no-match, never the keyword."""
        scheme = PeksScheme.generate(
            deployment.public_params.params, rng=HmacDrbg(b"whs")
        )
        index = SearchableIndex(scheme)
        device = deployment.new_smart_device("peks-meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["P"])
        channel = deployment.sd_channel("peks-meter")
        bodies = {1: (b"outage at 03:12", ["outage", "event"]),
                  2: (b"normal reading", ["reading"]),
                  3: (b"outage resolved", ["outage"])}
        for _record_id, (body, keywords) in bodies.items():
            response = device.deposit(channel, "P", body)
            index.add(response.message_id, scheme.tag_all(keywords))
        hits = index.search(scheme.trapdoor("outage"))
        assert hits == [1, 3]
        # Decrypt only the hits via the normal protocol.
        messages = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        matched = [m.plaintext for m in messages if m.message_id in hits]
        assert matched == [b"outage at 03:12", b"outage resolved"]
