"""Identity-based signatures (Cha–Cheon) and their deposit integration."""

import pytest

from repro.errors import ProtocolError
from repro.ibe import setup
from repro.ibe.signatures import (
    IbeSignature,
    IbeSigner,
    IbeVerifier,
    extract_signing_key,
)
from repro.mathlib.rand import HmacDrbg
from tests.conftest import build_deployment


@pytest.fixture(scope="module")
def master():
    return setup("TOY64", rng=HmacDrbg(b"ibs-master"))


@pytest.fixture()
def signer(master):
    key = extract_signing_key(master, b"meter-1")
    return IbeSigner(master.public, b"meter-1", key, rng=HmacDrbg(b"ibs-rng"))


@pytest.fixture()
def verifier(master):
    return IbeVerifier(master.public)


class TestSignScheme:
    def test_valid_signature_verifies(self, signer, verifier):
        signature = signer.sign(b"reading 42")
        assert verifier.verify(b"meter-1", b"reading 42", signature)

    def test_message_tamper_rejected(self, signer, verifier):
        signature = signer.sign(b"reading 42")
        assert not verifier.verify(b"meter-1", b"reading 43", signature)

    def test_identity_substitution_rejected(self, signer, verifier):
        signature = signer.sign(b"reading 42")
        assert not verifier.verify(b"meter-2", b"reading 42", signature)

    def test_signature_component_tamper_rejected(self, signer, verifier):
        signature = signer.sign(b"m")
        forged_u = IbeSignature(u=2 * signature.u, v=signature.v)
        forged_v = IbeSignature(u=signature.u, v=2 * signature.v)
        assert not verifier.verify(b"meter-1", b"m", forged_u)
        assert not verifier.verify(b"meter-1", b"m", forged_v)

    def test_infinity_components_rejected(self, master, signer, verifier):
        infinity = master.public.params.curve.infinity()
        assert not verifier.verify(
            b"meter-1", b"m", IbeSignature(u=infinity, v=infinity)
        )

    def test_signatures_are_randomised(self, signer, verifier):
        first = signer.sign(b"same message")
        second = signer.sign(b"same message")
        assert first.u != second.u
        assert verifier.verify(b"meter-1", b"same message", first)
        assert verifier.verify(b"meter-1", b"same message", second)

    def test_serialisation_roundtrip(self, master, signer, verifier):
        signature = signer.sign(b"wire")
        rebuilt = IbeSignature.from_bytes(
            signature.to_bytes(), master.public.params
        )
        assert verifier.verify(b"meter-1", b"wire", rebuilt)

    def test_signing_key_cannot_decrypt_encryption_identity(self, master):
        """Domain separation: the signing key is NOT the encryption key
        for the same identity string."""
        signing_key = extract_signing_key(master, b"meter-1")
        encryption_key = master.extract(b"meter-1")
        assert signing_key.point != encryption_key.point

    def test_key_from_wrong_master_fails(self, master, verifier):
        other_master = setup("TOY64", rng=HmacDrbg(b"other"))
        rogue_key = extract_signing_key(other_master, b"meter-1")
        rogue = IbeSigner(
            master.public, b"meter-1", rogue_key, rng=HmacDrbg(b"r")
        )
        assert not verifier.verify(b"meter-1", b"m", rogue.sign(b"m"))


class TestDeploymentIntegration:
    @pytest.fixture()
    def signed_deployment(self):
        deployment = build_deployment(
            use_device_signatures=True, seed=b"tests-ibs-deploy"
        )
        yield deployment
        deployment.close()

    def test_signed_deposit_end_to_end(self, signed_deployment):
        deployment = signed_deployment
        device = deployment.new_smart_device("meter-ibs")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        device.deposit(deployment.sd_channel("meter-ibs"), "A", b"signed")
        messages = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        assert [m.plaintext for m in messages] == [b"signed"]

    def test_unsigned_deposit_rejected(self, signed_deployment):
        """A device that skips the signature is turned away even with a
        valid MAC."""
        from repro.clients.smart_device import SmartDevice

        deployment = signed_deployment
        shared = deployment.mws.register_device("bare-meter")
        bare = SmartDevice(
            "bare-meter",
            deployment.public_params,
            shared,
            clock=deployment.clock,
            rng=HmacDrbg(b"bare"),
        )
        with pytest.raises(ProtocolError):
            bare.deposit(deployment.sd_channel("bare-meter"), "A", b"x")
        assert deployment.mws.sda.stats["bad_signature"] == 1

    def test_tampered_signature_rejected(self, signed_deployment):
        deployment = signed_deployment
        device = deployment.new_smart_device("meter-ibs")
        request = device.build_deposit("A", b"x")
        request.signature = request.signature[:-4] + bytes(4)
        from repro.wire.messages import DepositResponse

        raw = deployment.network.send("meter-ibs", "mws-sd", request.to_bytes())
        response = DepositResponse.from_bytes(raw)
        assert not response.accepted
        assert "signature" in response.error

    def test_signature_optional_when_not_required(self, deployment):
        """Default deployments ignore the signature field entirely."""
        device = deployment.new_smart_device("meter-plain")
        request = device.build_deposit("A", b"x")
        assert request.signature == b""
