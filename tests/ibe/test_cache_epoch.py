"""Epoch rolls must invalidate the crypto cache (regression).

The cache layers are keyed by identity *bytes*, and legacy (epoch-0)
identity strings do not change when the deployment's epoch rolls — so
without the epoch folded into the group fingerprint, a cache warmed at
epoch N would keep serving H1/G_T values that re-derive key material the
roll just retired.
"""

from repro.ibe import setup
from repro.ibe.cache import CryptoCache
from repro.mathlib.rand import HmacDrbg

IDENTITY = b"cache-epoch-identity"


def _fresh_public():
    # A private keypair, not the session fixture: this test mutates
    # ``current_epoch`` on the public parameters.
    return setup("TOY64", rng=HmacDrbg(b"tests-cache-epoch")).public


class TestEpochInvalidation:
    def test_warm_cache_misses_after_roll(self):
        public = _fresh_public()
        cache = CryptoCache()

        point = cache.h1_point(public, IDENTITY)
        gt = cache.shared_gt(public, IDENTITY)
        assert cache.h1_point(public, IDENTITY) == point
        assert cache.shared_gt(public, IDENTITY) == gt
        warm = cache.stats()
        assert warm["h1_hits"] >= 1 and warm["pairing_hits"] == 1
        assert warm["invalidations"] == 0

        public.current_epoch += 1

        # Same identity bytes, new epoch: both layers must miss.
        assert cache.h1_point(public, IDENTITY) == point
        rolled = cache.stats()
        assert rolled["invalidations"] == 1
        assert rolled["h1_misses"] == warm["h1_misses"] + 1
        # The G_T layer was emptied wholesale, not just demoted.
        assert rolled["pairing_size"] == 0
        cache.shared_gt(public, IDENTITY)
        assert cache.stats()["pairing_misses"] == warm["pairing_misses"] + 1

    def test_values_survive_roll_bitwise(self):
        # Epoch-0 identities hash identically after a roll; only the
        # memoization is dropped, never the math.
        public = _fresh_public()
        cache = CryptoCache()
        before = (cache.h1_point(public, IDENTITY), cache.shared_gt(public, IDENTITY))
        public.current_epoch += 3
        after = (cache.h1_point(public, IDENTITY), cache.shared_gt(public, IDENTITY))
        assert before == after

    def test_same_epoch_is_not_an_invalidation(self):
        public = _fresh_public()
        cache = CryptoCache()
        cache.shared_gt(public, IDENTITY)
        cache.shared_gt(public, IDENTITY)
        assert cache.stats()["invalidations"] == 0
