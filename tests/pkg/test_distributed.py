"""Threshold (distributed) PKG: Shamir-shared master secret."""

import pytest

from repro.core.conventions import identity_string
from repro.errors import AuthenticationError, ParameterError
from repro.ibe import setup
from repro.ibe.kem import hybrid_decrypt, hybrid_encrypt
from repro.mathlib.rand import HmacDrbg
from repro.pairing.hashing import hash_to_point
from repro.pkg.distributed import DistributedPkg, KeyShareCombiner


@pytest.fixture(scope="module")
def master():
    return setup("TOY64", rng=HmacDrbg(b"dpkg-master"))


@pytest.fixture(scope="module")
def dpkg(master):
    return DistributedPkg(master, threshold=3, share_count=5, rng=HmacDrbg(b"deal"))


@pytest.fixture(scope="module")
def combiner(master, dpkg):
    return KeyShareCombiner(master.public, dpkg.commitments(), threshold=3)


def partials_for(dpkg, master, identity, indices):
    q_id = hash_to_point(master.public.params, identity)
    by_index = {share.index: share for share in dpkg.shares}
    return {index: by_index[index].extract_partial(q_id) for index in indices}


class TestSharing:
    def test_shares_differ_from_master(self, master, dpkg):
        assert all(
            share.secret_share != master.master_secret for share in dpkg.shares
        )

    def test_commitments_match_shares(self, master, dpkg):
        generator = master.public.params.generator
        for share in dpkg.shares:
            assert share.commitment == share.secret_share * generator

    def test_invalid_threshold_rejected(self, master):
        with pytest.raises(ParameterError):
            DistributedPkg(master, threshold=0, share_count=3)
        with pytest.raises(ParameterError):
            DistributedPkg(master, threshold=4, share_count=3)

    def test_public_params_unchanged(self, master, dpkg):
        """Distribution must not change what encryptors see."""
        assert dpkg.public.p_pub == master.public.p_pub


class TestCombination:
    IDENTITY = identity_string("ATTR-D", b"\x09" * 16)

    def test_any_t_of_n_reconstructs(self, master, dpkg, combiner):
        expected = master.extract(self.IDENTITY).point
        for indices in ([1, 2, 3], [1, 3, 5], [2, 4, 5], [3, 4, 5]):
            partials = partials_for(dpkg, master, self.IDENTITY, indices)
            assert combiner.combine(self.IDENTITY, partials) == expected, indices

    def test_extra_partials_tolerated(self, master, dpkg, combiner):
        partials = partials_for(dpkg, master, self.IDENTITY, [1, 2, 3, 4, 5])
        assert combiner.combine(self.IDENTITY, partials) == master.extract(
            self.IDENTITY
        ).point

    def test_too_few_partials_rejected(self, master, dpkg, combiner):
        partials = partials_for(dpkg, master, self.IDENTITY, [1, 2])
        with pytest.raises(ParameterError):
            combiner.combine(self.IDENTITY, partials)

    def test_fewer_than_t_shares_give_wrong_key(self, master, dpkg):
        """t-1 shares combined with t-1 Lagrange coefficients produce a
        point that does not decrypt — the threshold is real."""
        weak_combiner = KeyShareCombiner(
            master.public, dpkg.commitments(), threshold=2
        )
        partials = partials_for(dpkg, master, self.IDENTITY, [1, 2])
        wrong = weak_combiner.combine(self.IDENTITY, partials, verify=False)
        assert wrong != master.extract(self.IDENTITY).point

    def test_corrupt_partial_detected(self, master, dpkg, combiner):
        partials = partials_for(dpkg, master, self.IDENTITY, [1, 2, 3])
        partials[2] = 2 * partials[2]
        with pytest.raises(AuthenticationError):
            combiner.combine(self.IDENTITY, partials)

    def test_unknown_share_index_rejected(self, master, dpkg, combiner):
        partials = partials_for(dpkg, master, self.IDENTITY, [1, 2, 3])
        partials[9] = partials.pop(3)
        with pytest.raises(AuthenticationError):
            combiner.combine(self.IDENTITY, partials)

    def test_combined_key_decrypts(self, master, dpkg, combiner):
        """End-to-end: a ciphertext for the identity opens under the
        threshold-combined key."""
        ciphertext = hybrid_encrypt(
            master.public, self.IDENTITY, b"threshold secret", rng=HmacDrbg(b"e")
        )
        partials = partials_for(dpkg, master, self.IDENTITY, [2, 3, 4])
        key = combiner.combine(self.IDENTITY, partials)
        assert hybrid_decrypt(master.public, key, ciphertext) == b"threshold secret"

    def test_deterministic_dealing(self, master):
        first = DistributedPkg(master, 2, 3, rng=HmacDrbg(b"same"))
        second = DistributedPkg(master, 2, 3, rng=HmacDrbg(b"same"))
        assert [s.secret_share for s in first.shares] == [
            s.secret_share for s in second.shares
        ]
