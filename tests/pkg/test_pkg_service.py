"""The Private Key Generator service: tickets, sessions, extraction."""

import pytest

from repro.core.conventions import identity_string
from repro.ibe import setup
from repro.mathlib.rand import HmacDrbg
from repro.pairing.hashing import hash_to_point
from repro.pkg.service import PkgConfig, PrivateKeyGenerator
from repro.sim.clock import SimClock
from repro.symciph.cipher import SymmetricScheme
from repro.wire.messages import (
    Authenticator,
    KeyRequest,
    KeyResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    Ticket,
)

MWS_PKG_KEY = HmacDrbg(b"mws-pkg").randbytes(32)


@pytest.fixture()
def world():
    clock = SimClock(tick_us=7)
    master = setup("TOY64", rng=HmacDrbg(b"pkg-master"))
    pkg = PrivateKeyGenerator(
        master, MWS_PKG_KEY, clock=clock, rng=HmacDrbg(b"pkg-rng")
    )
    return clock, master, pkg


def make_sealed_ticket(clock, rc_id="rc", attribute_map=None, session_key=None,
                       lifetime_us=3600 * 1_000_000, key=MWS_PKG_KEY):
    session_key = session_key or HmacDrbg(b"sess").randbytes(32)
    ticket = Ticket(
        rc_id=rc_id,
        session_key=session_key,
        attribute_map=attribute_map or {1: "ELECTRIC-X"},
        issued_at_us=clock.now_us(),
        lifetime_us=lifetime_us,
    )
    scheme = SymmetricScheme("AES-256", key, mac=True, rng=HmacDrbg(b"seal"))
    return session_key, scheme.seal(ticket.to_bytes())


def make_auth_request(clock, session_key, sealed_ticket, rc_id="rc",
                      timestamp_us=None):
    authenticator = Authenticator(
        rc_id=rc_id,
        timestamp_us=timestamp_us if timestamp_us is not None else clock.now_us(),
    )
    scheme = SymmetricScheme("AES-256", session_key, mac=True, rng=HmacDrbg(b"auth"))
    return PkgAuthRequest(
        rc_id=rc_id,
        sealed_ticket=sealed_ticket,
        sealed_authenticator=scheme.seal(authenticator.to_bytes()),
    )


class TestAuthentication:
    def test_valid_ticket_establishes_session(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock)
        response = pkg.handle_auth(make_auth_request(clock, session_key, sealed))
        assert response.ok and len(response.session_id) == 16
        assert pkg.stats["sessions_established"] == 1

    def test_forged_ticket_rejected(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock, key=bytes(32))  # wrong key
        response = pkg.handle_auth(make_auth_request(clock, session_key, sealed))
        assert not response.ok and "ticket" in response.error
        assert pkg.stats["auth_failures"] == 1

    def test_expired_ticket_rejected(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock, lifetime_us=1000)
        clock.advance(10_000_000)
        response = pkg.handle_auth(make_auth_request(clock, session_key, sealed))
        assert not response.ok and "expired" in response.error

    def test_stolen_ticket_wrong_rc_rejected(self, world):
        """Mallory presents a ticket issued to rc with her own id."""
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock, rc_id="rc")
        request = make_auth_request(clock, session_key, sealed, rc_id="mallory")
        response = pkg.handle_auth(request)
        assert not response.ok

    def test_authenticator_wrong_session_key_rejected(self, world):
        clock, _master, pkg = world
        _right_key, sealed = make_sealed_ticket(clock)
        response = pkg.handle_auth(
            make_auth_request(clock, HmacDrbg(b"wrong").randbytes(32), sealed)
        )
        assert not response.ok and "authenticator" in response.error

    def test_stale_authenticator_rejected(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock)
        old_timestamp = clock.now_us()
        clock.advance(600 * 1_000_000)
        # Re-issue ticket so the ticket itself is fresh; authenticator stale.
        session_key, sealed = make_sealed_ticket(clock, session_key=session_key)
        request = make_auth_request(
            clock, session_key, sealed, timestamp_us=old_timestamp
        )
        response = pkg.handle_auth(request)
        assert not response.ok and "freshness" in response.error

    def test_authenticator_replay_rejected(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock)
        request = make_auth_request(clock, session_key, sealed)
        assert pkg.handle_auth(request).ok
        response = pkg.handle_auth(request)
        assert not response.ok and "replayed" in response.error


class TestExtraction:
    def _session(self, clock, pkg, attribute_map=None):
        session_key, sealed = make_sealed_ticket(clock, attribute_map=attribute_map)
        response = pkg.handle_auth(make_auth_request(clock, session_key, sealed))
        assert response.ok
        return session_key, response.session_id

    def test_extraction_returns_correct_key(self, world):
        clock, master, pkg = world
        session_key, session_id = self._session(clock, pkg)
        nonce = b"\x05" * 16
        response = pkg.handle_key_request(
            KeyRequest(session_id=session_id, attribute_id=1, nonce=nonce)
        )
        assert response.ok
        scheme = SymmetricScheme("AES-256", session_key, mac=True)
        point = master.public.params.curve.from_bytes(scheme.open(response.sealed_key))
        identity = identity_string("ELECTRIC-X", nonce)
        expected = master.master_secret * hash_to_point(
            master.public.params, identity
        )
        assert point == expected

    def test_unknown_session_rejected(self, world):
        _clock, _master, pkg = world
        response = pkg.handle_key_request(
            KeyRequest(session_id=b"\x00" * 16, attribute_id=1, nonce=b"")
        )
        assert not response.ok and "session" in response.error

    def test_attribute_id_outside_ticket_rejected(self, world):
        clock, _master, pkg = world
        _key, session_id = self._session(clock, pkg, attribute_map={3: "WATER"})
        response = pkg.handle_key_request(
            KeyRequest(session_id=session_id, attribute_id=9, nonce=b"")
        )
        assert not response.ok and "not in ticket" in response.error
        assert pkg.stats["extract_denials"] == 1

    def test_session_expires_with_ticket(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock, lifetime_us=1_000_000)
        auth = pkg.handle_auth(make_auth_request(clock, session_key, sealed))
        clock.advance(2_000_000)
        response = pkg.handle_key_request(
            KeyRequest(session_id=auth.session_id, attribute_id=1, nonce=b"")
        )
        assert not response.ok and "expired" in response.error

    def test_pkg_side_policy_denies_attribute(self, world):
        clock, _master, pkg = world
        pkg.deny_attribute("ELECTRIC-X")
        _key, session_id = self._session(clock, pkg)
        response = pkg.handle_key_request(
            KeyRequest(session_id=session_id, attribute_id=1, nonce=b"")
        )
        assert not response.ok and "policy" in response.error

    def test_audit_log_records_extractions(self, world):
        clock, _master, pkg = world
        _key, session_id = self._session(clock, pkg)
        pkg.handle_key_request(
            KeyRequest(session_id=session_id, attribute_id=1, nonce=b"\xaa")
        )
        assert pkg.audit_log == [("rc", "ELECTRIC-X", "aa", pytest.approx(
            pkg.audit_log[0][3]))]
        assert pkg.stats["keys_extracted"] == 1

    def test_per_nonce_keys_differ(self, world):
        clock, _master, pkg = world
        session_key, session_id = self._session(clock, pkg)
        scheme = SymmetricScheme("AES-256", session_key, mac=True)
        keys = []
        for nonce in (b"\x01" * 16, b"\x02" * 16):
            response = pkg.handle_key_request(
                KeyRequest(session_id=session_id, attribute_id=1, nonce=nonce)
            )
            keys.append(scheme.open(response.sealed_key))
        assert keys[0] != keys[1]


class TestByteHandler:
    def test_tagged_dispatch(self, world):
        clock, _master, pkg = world
        session_key, sealed = make_sealed_ticket(clock)
        request = make_auth_request(clock, session_key, sealed)
        raw = pkg.handler(b"\x01" + request.to_bytes())
        response = PkgAuthResponse.from_bytes(raw)
        assert response.ok
        key_raw = pkg.handler(
            b"\x02"
            + KeyRequest(
                session_id=response.session_id, attribute_id=1, nonce=b"x"
            ).to_bytes()
        )
        assert KeyResponse.from_bytes(key_raw).ok

    def test_unknown_tag(self, world):
        _clock, _master, pkg = world
        response = PkgAuthResponse.from_bytes(pkg.handler(b"\x09payload"))
        assert not response.ok and "unknown tag" in response.error

    def test_empty_request(self, world):
        _clock, _master, pkg = world
        assert not PkgAuthResponse.from_bytes(pkg.handler(b"")).ok

    def test_malformed_bodies(self, world):
        _clock, _master, pkg = world
        assert not PkgAuthResponse.from_bytes(pkg.handler(b"\x01garbage")).ok
        assert not KeyResponse.from_bytes(pkg.handler(b"\x02garbage")).ok
