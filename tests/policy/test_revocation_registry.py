"""RevocationRegistry / RevocationView lifecycle semantics."""

import pytest

from repro.errors import ParameterError
from repro.obs.registry import MetricsRegistry
from repro.policy.revocation import RevocationRegistry


class TestViewPublication:
    def test_fresh_registry_is_epoch_zero(self):
        registry = RevocationRegistry()
        view = registry.view()
        assert (view.version, view.epoch) == (0, 0)
        assert view.entries == ()
        assert view.min_deposit_epoch == 0
        assert not registry.is_revoked("anyone")

    def test_every_mutation_bumps_version_monotonically(self):
        registry = RevocationRegistry()
        versions = [registry.version]
        registry.roll_epoch()
        versions.append(registry.version)
        registry.revoke("rc-a")
        versions.append(registry.version)
        registry.retire_before(1)
        versions.append(registry.version)
        assert versions == [0, 1, 2, 3]

    def test_old_views_are_frozen_snapshots(self):
        registry = RevocationRegistry()
        before = registry.view()
        registry.revoke("rc-a")
        registry.roll_epoch()
        # The captured view still answers with pre-mutation state: a
        # reader mid-request is immune to concurrent churn.
        assert before.epoch == 0
        assert before.entries == ()
        assert not before.is_revoked("rc-a")
        assert registry.view() is not before
        with pytest.raises(AttributeError):
            before.epoch = 99  # frozen dataclass


class TestRevocationSemantics:
    def test_revoke_rolls_and_takes_effect_next_epoch(self):
        registry = RevocationRegistry()
        entry = registry.revoke("rc-a")
        assert entry.effective_epoch == 1
        assert registry.current_epoch == 1
        view = registry.view()
        assert view.is_revoked("rc-a")  # at the (new) current epoch
        # Freeze-at-revocation: epoch 0 material stays reachable.
        assert not view.is_revoked("rc-a", epoch=0)
        assert view.is_revoked("rc-a", epoch=5)

    def test_roll_false_queues_entry_for_a_shared_roll(self):
        registry = RevocationRegistry()
        registry.revoke("rc-a", roll=False)
        registry.revoke("rc-b", roll=False)
        # Entries recorded, epoch unmoved: nothing bites yet.
        assert registry.current_epoch == 0
        assert not registry.is_revoked("rc-a")
        assert not registry.is_revoked("rc-b")
        registry.roll_epoch()
        assert registry.current_epoch == 1
        assert registry.is_revoked("rc-a")
        assert registry.is_revoked("rc-b")

    def test_attribute_scope(self):
        registry = RevocationRegistry()
        registry.revoke("rc-a", attribute="WATER")
        view = registry.view()
        assert view.is_revoked("rc-a", "WATER")
        assert not view.is_revoked("rc-a", "GAS")
        # attribute=None asks "revoked for anything?"
        assert view.is_revoked("rc-a")
        assert view.revoked_attributes("rc-a") == {"WATER"}
        assert view.revoked_attributes("rc-b") == set()

    def test_wholesale_entry_dominates(self):
        registry = RevocationRegistry()
        registry.revoke("rc-a", attribute="WATER")
        registry.revoke("rc-a")  # wholesale
        view = registry.view()
        assert view.is_revoked("rc-a", "GAS")
        assert view.revoked_attributes("rc-a") is None
        # Below the wholesale entry's effective epoch only the
        # attribute-scoped entry applies.
        assert view.revoked_attributes("rc-a", epoch=1) == {"WATER"}
        assert view.revoked_attributes("rc-a", epoch=0) == set()


class TestRetirement:
    def test_threshold_advances_only_within_history(self):
        registry = RevocationRegistry()
        registry.roll_epoch()
        registry.roll_epoch()
        registry.retire_before(2)
        assert registry.view().min_deposit_epoch == 2
        with pytest.raises(ParameterError):
            registry.retire_before(3)  # beyond the current epoch
        with pytest.raises(ParameterError):
            registry.retire_before(1)  # regression
        registry.retire_before(2)  # idempotent re-pin is fine
        assert registry.view().min_deposit_epoch == 2


class TestCounters:
    def test_metrics_registry_wiring(self):
        metrics = MetricsRegistry()
        registry = RevocationRegistry(metrics)
        registry.revoke("rc-a")           # +1 revocation, +1 roll
        registry.revoke("rc-b", roll=False)
        registry.roll_epoch()
        registry.extract_denied.inc()
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["revocation.revocations"] == 2
        assert counters["revocation.epoch_rolls"] == 2
        assert counters["revocation.extract_denied"] == 1
        assert snapshot["gauges"]["revocation.current_epoch"] == 2
