"""The XACML-lite rule language, parser and engine."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    CombiningAlgorithm,
    Effect,
    Policy,
    PolicyEngine,
    Rule,
    parse_policy,
)


class TestRuleMatching:
    def test_exact_match(self):
        rule = Rule(Effect.PERMIT, "c-services", "ELECTRIC-X")
        assert rule.matches("c-services", "ELECTRIC-X", 0)
        assert not rule.matches("other", "ELECTRIC-X", 0)
        assert not rule.matches("c-services", "WATER-X", 0)

    def test_glob_patterns(self):
        rule = Rule(Effect.PERMIT, "c-*", "*-GLENBROOK-*")
        assert rule.matches("c-services", "GAS-GLENBROOK-SV-CA", 0)
        assert not rule.matches("x-services", "GAS-GLENBROOK-SV-CA", 0)

    def test_case_sensitive(self):
        rule = Rule(Effect.PERMIT, "RC", "*")
        assert not rule.matches("rc", "A", 0)

    def test_time_window(self):
        rule = Rule(Effect.PERMIT, "*", "*", not_before_us=100, not_after_us=200)
        assert not rule.matches("s", "a", 99)
        assert rule.matches("s", "a", 100)
        assert rule.matches("s", "a", 200)
        assert not rule.matches("s", "a", 201)


class TestCombiningAlgorithms:
    RULES = [
        Rule(Effect.DENY, "*", "GAS-*"),
        Rule(Effect.PERMIT, "*", "*"),
    ]

    def test_first_applicable(self):
        policy = Policy(self.RULES, CombiningAlgorithm.FIRST_APPLICABLE)
        assert policy.decide("rc", "GAS-X", 0) is Effect.DENY
        assert policy.decide("rc", "WATER-X", 0) is Effect.PERMIT

    def test_deny_overrides(self):
        policy = Policy(
            list(reversed(self.RULES)), CombiningAlgorithm.DENY_OVERRIDES
        )
        assert policy.decide("rc", "GAS-X", 0) is Effect.DENY

    def test_permit_overrides(self):
        policy = Policy(self.RULES, CombiningAlgorithm.PERMIT_OVERRIDES)
        assert policy.decide("rc", "GAS-X", 0) is Effect.PERMIT

    def test_default_effect_when_nothing_applies(self):
        policy = Policy([Rule(Effect.PERMIT, "x", "y")])
        assert policy.decide("a", "b", 0) is Effect.DENY
        permissive = Policy(
            [Rule(Effect.DENY, "x", "y")], default_effect=Effect.PERMIT
        )
        assert permissive.decide("a", "b", 0) is Effect.PERMIT


class TestParser:
    def test_full_example(self):
        policy = parse_policy(
            """
            # comments are fine
            permit subject=c-services attribute=*-GLENBROOK-SV-CA
            deny   subject=* attribute=GAS-*   # trailing comment
            permit subject=*-auditor attribute=* from=1000 until=2000
            """
        )
        assert len(policy.rules) == 3
        assert policy.rules[0].subject_pattern == "c-services"
        assert policy.rules[2].not_before_us == 1000
        assert policy.rules[2].not_after_us == 2000

    def test_defaults_to_wildcards(self):
        policy = parse_policy("permit")
        assert policy.rules[0].subject_pattern == "*"
        assert policy.rules[0].attribute_pattern == "*"

    def test_empty_policy(self):
        assert parse_policy("") .rules == []
        assert parse_policy("# only comments\n\n").rules == []

    @pytest.mark.parametrize(
        "bad_line,fragment",
        [
            ("allow subject=x", "permit"),
            ("permit subject", "key=value"),
            ("permit color=red", "unknown key"),
            ("permit subject=a subject=b", "duplicate"),
            ("permit from=yesterday", "integer"),
        ],
    )
    def test_malformed_lines_raise_with_line_number(self, bad_line, fragment):
        with pytest.raises(PolicyError) as excinfo:
            parse_policy("permit\n" + bad_line)
        assert "line 2" in str(excinfo.value)
        assert fragment in str(excinfo.value)


class TestEngine:
    def test_audit_trail(self):
        engine = PolicyEngine(parse_policy("deny attribute=GAS-*\npermit"))
        assert engine.is_permitted("rc", "WATER-1", 0)
        assert not engine.is_permitted("rc", "GAS-1", 0)
        assert len(engine.audit) == 2
        assert len(engine.denials()) == 1
        assert engine.denials()[0].attribute == "GAS-1"

    def test_audit_limit(self):
        engine = PolicyEngine(parse_policy("permit"), audit_limit=3)
        for index in range(10):
            engine.is_permitted("rc", str(index), 0)
        assert len(engine.audit) == 3

    def test_hot_swap(self):
        engine = PolicyEngine(parse_policy("deny"))
        assert not engine.is_permitted("rc", "A", 0)
        engine.replace_policy(parse_policy("permit"))
        assert engine.is_permitted("rc", "A", 0)
