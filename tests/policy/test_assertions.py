"""Signed identity assertions and their gatekeeper integration (§VIII SAML)."""

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.mathlib.rand import HmacDrbg
from repro.mws.service import MwsConfig
from repro.policy.assertions import (
    AssertionValidator,
    IdentityAssertion,
    IdentityProvider,
)
from repro.sim.clock import SimClock
from tests.conftest import build_deployment

AUDIENCE = "mws.example"


@pytest.fixture(scope="module")
def idp_world():
    clock = SimClock(tick_us=7)
    idp = IdentityProvider("corp-idp", clock, HmacDrbg(b"idp"), rsa_bits=768)
    validator = AssertionValidator(
        AUDIENCE, clock, trusted_issuers={"corp-idp": idp.public_key}
    )
    return clock, idp, validator


class TestAssertionPrimitive:
    def test_valid_assertion_accepted(self, idp_world):
        _clock, idp, validator = idp_world
        assertion = idp.issue("c-services", AUDIENCE, {"role": "retailer"})
        validator.validate(assertion)
        assert validator.stats["accepted"] >= 1

    def test_serialisation_roundtrip(self, idp_world):
        _clock, idp, validator = idp_world
        assertion = idp.issue("rc", AUDIENCE, {"a": "1", "b": "2"})
        rebuilt = IdentityAssertion.from_bytes(assertion.to_bytes())
        assert rebuilt.attributes == {"a": "1", "b": "2"}
        validator.validate(rebuilt)

    def test_untrusted_issuer_rejected(self, idp_world):
        clock, _idp, validator = idp_world
        rogue = IdentityProvider("rogue-idp", clock, HmacDrbg(b"rogue"),
                                 rsa_bits=768)
        with pytest.raises(AuthenticationError, match="not trusted"):
            validator.validate(rogue.issue("rc", AUDIENCE))

    def test_tampered_subject_rejected(self, idp_world):
        _clock, idp, validator = idp_world
        assertion = idp.issue("alice", AUDIENCE)
        assertion.subject = "mallory"
        with pytest.raises(AuthenticationError, match="signature"):
            validator.validate(assertion)

    def test_wrong_audience_rejected(self, idp_world):
        _clock, idp, validator = idp_world
        assertion = idp.issue("rc", "other-service")
        with pytest.raises(AuthenticationError, match="audience"):
            validator.validate(assertion)

    def test_expired_assertion_rejected(self, idp_world):
        clock, idp, validator = idp_world
        assertion = idp.issue("rc", AUDIENCE, lifetime_us=1000)
        clock.advance(10_000_000)
        with pytest.raises(AuthenticationError, match="validity"):
            validator.validate(assertion)

    def test_replay_rejected(self, idp_world):
        _clock, idp, validator = idp_world
        assertion = idp.issue("rc", AUDIENCE)
        validator.validate(assertion)
        with pytest.raises(AuthenticationError, match="replayed"):
            validator.validate(assertion)

    def test_attribute_tamper_rejected(self, idp_world):
        _clock, idp, validator = idp_world
        assertion = idp.issue("rc", AUDIENCE, {"role": "viewer"})
        assertion.attributes["role"] = "admin"
        with pytest.raises(AuthenticationError, match="signature"):
            validator.validate(assertion)


class TestGatekeeperIntegration:
    @pytest.fixture()
    def sso_deployment(self):
        """A deployment whose gatekeeper trusts one corporate IdP."""
        # Build deployment first to share its clock with the IdP.
        deployment = build_deployment(seed=b"tests-sso")
        idp = IdentityProvider(
            "corp-idp", deployment.clock, HmacDrbg(b"sso-idp"), rsa_bits=768
        )
        validator = AssertionValidator(
            "mws", deployment.clock,
            trusted_issuers={"corp-idp": idp.public_key},
        )
        deployment.mws.gatekeeper._assertion_validator = validator
        yield deployment, idp
        deployment.close()

    def test_assertion_login_end_to_end(self, sso_deployment):
        deployment, idp = sso_deployment
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("sso-rc", "unused-pw",
                                                 attributes=["A"])
        device.deposit(deployment.sd_channel("meter"), "A", b"sso message")
        assertion = idp.issue("sso-rc", "mws")
        response = client.retrieve(
            deployment.rc_mws_channel("sso-rc"),
            assertion=assertion.to_bytes(),
        )
        assert len(response.messages) == 1
        assert deployment.mws.gatekeeper.stats["assertion_auths"] == 1
        # The rest of the protocol proceeds normally.
        token = client.open_token(response.token)
        session_id = client.authenticate_to_pkg(
            deployment.rc_pkg_channel("sso-rc"), token
        )
        message = response.messages[0]
        point = client.fetch_key(
            deployment.rc_pkg_channel("sso-rc"), session_id,
            token.session_key, message.attribute_id, message.nonce,
        )
        assert client.decrypt_message(message, point) == b"sso message"

    def test_subject_mismatch_rejected(self, sso_deployment):
        deployment, idp = sso_deployment
        deployment.new_receiving_client("victim", "pw", attributes=["A"])
        attacker = deployment.new_receiving_client("attacker", "pw2",
                                                   attributes=["A"])
        # Attacker presents an assertion issued for themselves but claims
        # to be the victim.
        assertion = idp.issue("attacker", "mws")
        request = attacker.build_retrieve_request(
            assertion=assertion.to_bytes()
        )
        request.rc_id = "victim"
        raw = deployment.network.send("attacker", "mws-client",
                                      request.to_bytes())
        assert raw.startswith(b"ERR:AuthenticationError")

    def test_assertions_rejected_when_not_configured(self, deployment):
        idp = IdentityProvider("idp", deployment.clock, HmacDrbg(b"x"),
                               rsa_bits=768)
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        assertion = idp.issue("rc", "mws")
        with pytest.raises(ProtocolError):
            client.retrieve(
                deployment.rc_mws_channel("rc"),
                assertion=assertion.to_bytes(),
            )

    def test_mws_config_plumbs_validator(self):
        clock = SimClock(tick_us=7)
        idp = IdentityProvider("idp", clock, HmacDrbg(b"cfg"), rsa_bits=768)
        validator = AssertionValidator(
            "mws", clock, trusted_issuers={"idp": idp.public_key}
        )
        deployment = build_deployment(
            mws=MwsConfig(assertion_validator=validator),
            seed=b"tests-sso-config",
        )
        # SimClock of deployment differs from the validator's; issue with
        # the deployment clock to stay inside the window.
        idp._clock = deployment.clock
        validator._clock = deployment.clock
        client = deployment.new_receiving_client("rc", "pw", attributes=["A"])
        assertion = idp.issue("rc", "mws")
        response = client.retrieve(
            deployment.rc_mws_channel("rc"), assertion=assertion.to_bytes()
        )
        assert response.rc_nonce == assertion.assertion_id
        deployment.close()
