"""HMAC vs the standard library, KDFs vs RFC vectors, CRC-32 vs zlib."""

import hashlib
import hmac as stdlib_hmac
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CipherError
from repro.hashes import Hmac, crc32, hkdf, hmac_md5, hmac_sha1, hmac_sha256, kdf1, kdf2
from repro.hashes.hmac import constant_time_equal

REFS = {
    "sha1": hashlib.sha1,
    "sha256": hashlib.sha256,
    "md5": hashlib.md5,
}


class TestHmac:
    @pytest.mark.parametrize("algorithm", ["sha1", "sha256", "md5"])
    @given(key=st.binary(max_size=100), data=st.binary(max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_stdlib(self, algorithm, key, data):
        ours = Hmac(key, algorithm, data).digest()
        theirs = stdlib_hmac.new(key, data, REFS[algorithm]).digest()
        assert ours == theirs

    def test_rfc4231_case_1(self):
        """RFC 4231 test case 1 for HMAC-SHA-256."""
        digest = hmac_sha256(b"\x0b" * 20, b"Hi There")
        assert digest.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_long_key(self):
        """Keys longer than the block size are hashed first (case 6)."""
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha256(key, data).hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )

    def test_one_shot_helpers(self):
        assert hmac_sha1(b"k", b"m") == stdlib_hmac.new(b"k", b"m", hashlib.sha1).digest()
        assert hmac_md5(b"k", b"m") == stdlib_hmac.new(b"k", b"m", hashlib.md5).digest()

    def test_incremental_update(self):
        h = Hmac(b"key", "sha256")
        h.update(b"part one ").update(b"part two")
        assert h.digest() == hmac_sha256(b"key", b"part one part two")

    def test_verify(self):
        h = Hmac(b"key", "sha256", b"data")
        assert h.verify(hmac_sha256(b"key", b"data"))
        assert not h.verify(hmac_sha256(b"key", b"datb"))

    def test_unknown_algorithm(self):
        with pytest.raises(CipherError):
            Hmac(b"k", "sha512")


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal_content(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_unequal_length(self):
        assert not constant_time_equal(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_equal(b"", b"")


class TestKdf:
    def test_lengths(self):
        for n in (0, 1, 31, 32, 33, 100):
            assert len(kdf1(b"seed", n)) == n
            assert len(kdf2(b"seed", n)) == n

    def test_deterministic(self):
        assert kdf2(b"s", 64) == kdf2(b"s", 64)

    def test_kdf1_kdf2_differ(self):
        assert kdf1(b"s", 32) != kdf2(b"s", 32)

    def test_prefix_property(self):
        """Longer outputs extend shorter ones (counter construction)."""
        assert kdf2(b"s", 64)[:32] == kdf2(b"s", 32)

    def test_different_seeds_differ(self):
        assert kdf2(b"a", 32) != kdf2(b"b", 32)

    def test_negative_length_raises(self):
        with pytest.raises(CipherError):
            kdf2(b"s", -1)

    def test_unknown_hash_raises(self):
        with pytest.raises(CipherError):
            kdf2(b"s", 16, algorithm="sha3")


class TestHkdf:
    def test_rfc5869_case_1(self):
        """RFC 5869 appendix A.1 (SHA-256)."""
        okm = hkdf(
            ikm=b"\x0b" * 22,
            length=42,
            salt=bytes.fromhex("000102030405060708090a0b0c"),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
        )
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_no_salt_no_info(self):
        okm = hkdf(ikm=b"\x0b" * 22, length=42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_length_cap(self):
        with pytest.raises(CipherError):
            hkdf(b"ikm", 255 * 32 + 1)

    def test_negative_length(self):
        with pytest.raises(CipherError):
            hkdf(b"ikm", -5)


class TestCrc32:
    def test_check_value(self):
        assert crc32(b"123456789") == 0xCBF43926

    @given(data=st.binary(max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    @given(a=st.binary(max_size=200), b=st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_incremental_continuation(self, a, b):
        assert crc32(b, crc32(a)) == crc32(a + b)

    def test_empty(self):
        assert crc32(b"") == 0
