"""SHA-1, SHA-256, MD5 against published vectors and hashlib."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashes import MD5, SHA1, SHA256, md5, sha1, sha256

IMPLEMENTATIONS = [
    (SHA1, sha1, hashlib.sha1),
    (SHA256, sha256, hashlib.sha256),
    (MD5, md5, hashlib.md5),
]


class TestPublishedVectors:
    def test_sha1_vectors(self):
        assert sha1(b"abc").hex() == "a9993e364706816aba3e25717850c26c9cd0d89d"
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        assert (
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex()
            == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        )

    def test_sha256_vectors(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_md5_vectors(self):
        assert md5(b"").hex() == "d41d8cd98f00b204e9800998ecf8427e"
        assert md5(b"abc").hex() == "900150983cd24fb0d6963f7d28e17f72"
        assert (
            md5(b"message digest").hex() == "f96b697d7cb7938d525a2f31aaf161d0"
        )

    def test_sha1_million_a(self):
        digest = SHA1(b"a" * 1_000_000).hexdigest()
        assert digest == "34aa973cd4c4daa4f61eeb2bdbad27316534016f"


class TestAgainstHashlib:
    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    @given(data=st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_random_inputs(self, cls, func, ref, data):
        assert func(data) == ref(data).digest()

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_block_boundary_lengths(self, cls, func, ref):
        """Padding edge cases: lengths around the 64-byte block size."""
        for n in (0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 1000):
            data = bytes(i % 251 for i in range(n))
            assert func(data) == ref(data).digest(), n


class TestIncrementalInterface:
    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_update_chunks_equals_one_shot(self, cls, func, ref):
        data = bytes(range(256)) * 3
        h = cls()
        for offset in range(0, len(data), 13):
            h.update(data[offset : offset + 13])
        assert h.digest() == func(data)

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_digest_does_not_finalise(self, cls, func, ref):
        """digest() must be repeatable and not disturb further updates."""
        h = cls(b"hello")
        first = h.digest()
        second = h.digest()
        assert first == second
        h.update(b" world")
        assert h.digest() == func(b"hello world")

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_copy_is_independent(self, cls, func, ref):
        h = cls(b"abc")
        clone = h.copy()
        clone.update(b"def")
        assert h.digest() == func(b"abc")
        assert clone.digest() == func(b"abcdef")

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_update_returns_self_for_chaining(self, cls, func, ref):
        assert cls().update(b"a").update(b"b").digest() == func(b"ab")

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_rejects_str(self, cls, func, ref):
        with pytest.raises(TypeError):
            cls().update("not bytes")

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_accepts_bytearray_and_memoryview(self, cls, func, ref):
        assert cls(bytearray(b"xy")).digest() == func(b"xy")
        h = cls()
        h.update(memoryview(b"xy"))
        assert h.digest() == func(b"xy")

    @pytest.mark.parametrize("cls,func,ref", IMPLEMENTATIONS)
    def test_metadata(self, cls, func, ref):
        h = cls()
        assert h.digest_size == ref().digest_size
        assert h.block_size == 64
        assert len(h.digest()) == h.digest_size
        assert h.hexdigest() == h.digest().hex()
