"""Unit and property tests for modular arithmetic primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MathError, NoSquareRootError, NotInvertibleError
from repro.mathlib.modular import (
    crt,
    cube_root_mod_p,
    egcd,
    inverse_mod,
    is_quadratic_residue,
    jacobi_symbol,
    legendre_symbol,
    sqrt_mod_p,
)

# A mix of small primes covering both p % 4 cases and p % 3 == 2.
PRIMES = [3, 5, 7, 11, 13, 10007, 1_000_003, 2**61 - 1]
P_MOD4_1 = 13  # exercises Tonelli-Shanks
P_MOD4_3 = 10007


class TestEgcd:
    def test_textbook_example(self):
        assert egcd(240, 46) == (2, -9, 47)

    def test_bezout_identity_holds(self):
        g, x, y = egcd(1071, 462)
        assert g == 21
        assert 1071 * x + 462 * y == g

    def test_zero_arguments(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5
        assert egcd(0, 0)[0] == 0

    def test_negative_arguments_give_nonnegative_gcd(self):
        g, x, y = egcd(-12, 18)
        assert g == 6
        assert -12 * x + 18 * y == 6

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_bezout_property(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0


class TestInverseMod:
    @given(st.integers(1, 10**6))
    def test_inverse_times_value_is_one(self, a):
        p = 1_000_003
        if a % p == 0:
            return
        inv = inverse_mod(a, p)
        assert a * inv % p == 1
        assert 0 <= inv < p

    def test_non_coprime_raises(self):
        with pytest.raises(NotInvertibleError):
            inverse_mod(6, 9)

    def test_zero_raises(self):
        with pytest.raises(NotInvertibleError):
            inverse_mod(0, 7)

    def test_bad_modulus_raises(self):
        with pytest.raises(MathError):
            inverse_mod(3, 0)

    def test_negative_value_normalised(self):
        assert inverse_mod(-2, 7) == inverse_mod(5, 7)


class TestCrt:
    def test_classic_example(self):
        assert crt([2, 3, 2], [3, 5, 7]) == 23

    def test_single_congruence(self):
        assert crt([5], [7]) == 5

    def test_result_satisfies_all_congruences(self):
        x = crt([1, 2, 3, 4], [5, 7, 9, 11])
        for r, m in zip([1, 2, 3, 4], [5, 7, 9, 11]):
            assert x % m == r

    def test_non_coprime_moduli_raise(self):
        with pytest.raises(MathError):
            crt([1, 2], [4, 6])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(MathError):
            crt([1], [3, 5])

    def test_empty_raises(self):
        with pytest.raises(MathError):
            crt([], [])


class TestLegendreJacobi:
    def test_legendre_of_zero(self):
        assert legendre_symbol(0, 7) == 0
        assert legendre_symbol(14, 7) == 0

    def test_known_residues_mod_11(self):
        residues = {pow(x, 2, 11) for x in range(1, 11)}
        for a in range(1, 11):
            expected = 1 if a in residues else -1
            assert legendre_symbol(a, 11) == expected

    def test_jacobi_matches_legendre_for_primes(self):
        for p in (7, 11, 13, 10007):
            for a in range(1, 25):
                assert jacobi_symbol(a, p) == legendre_symbol(a, p)

    def test_jacobi_composite(self):
        # (2/15) = (2/3)(2/5) = (-1)(-1) = 1
        assert jacobi_symbol(2, 15) == 1

    def test_jacobi_shared_factor_is_zero(self):
        assert jacobi_symbol(6, 15) == 0

    def test_even_modulus_raises(self):
        with pytest.raises(MathError):
            jacobi_symbol(3, 8)

    def test_legendre_requires_odd_prime(self):
        with pytest.raises(MathError):
            legendre_symbol(3, 2)

    def test_is_quadratic_residue(self):
        assert is_quadratic_residue(4, 11)
        assert not is_quadratic_residue(2, 11)


class TestSqrtModP:
    @pytest.mark.parametrize("p", PRIMES[1:])  # skip p=3 (few residues)
    def test_sqrt_of_squares(self, p):
        for x in range(1, 20):
            a = x * x % p
            root = sqrt_mod_p(a, p)
            assert root * root % p == a

    def test_non_residue_raises(self):
        with pytest.raises(NoSquareRootError):
            sqrt_mod_p(2, 11)

    def test_zero(self):
        assert sqrt_mod_p(0, 11) == 0

    def test_p_equals_two(self):
        assert sqrt_mod_p(1, 2) == 1
        assert sqrt_mod_p(0, 2) == 0

    @given(st.integers(1, 10**9))
    @settings(max_examples=50)
    def test_tonelli_shanks_path(self, x):
        """p % 4 == 1 forces the general algorithm."""
        p = 1_000_000_007  # p % 4 == 3? 10^9+7 % 4 == 3. Use 13-style prime.
        p = 2_147_483_629  # prime with p % 4 == 1
        a = x * x % p
        root = sqrt_mod_p(a, p)
        assert root * root % p == a


class TestCubeRoot:
    def test_requires_p_2_mod_3(self):
        with pytest.raises(MathError):
            cube_root_mod_p(8, 7)  # 7 % 3 == 1

    @pytest.mark.parametrize("p", [5, 11, 10007])  # all p % 3 == 2
    def test_cube_root_inverts_cubing(self, p):
        for x in range(p if p < 50 else 50):
            a = pow(x, 3, p)
            assert pow(cube_root_mod_p(a, p), 3, p) == a

    def test_cube_map_is_bijection(self):
        p = 11
        cubes = {pow(x, 3, p) for x in range(p)}
        assert len(cubes) == p
