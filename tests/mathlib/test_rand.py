"""Tests for randomness sources (HMAC-DRBG determinism is load-bearing:
every reproducible benchmark depends on it)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MathError
from repro.mathlib.rand import (
    HmacDrbg,
    RandomSource,
    SystemRandomSource,
    derive_seed,
)


class TestHmacDrbgDeterminism:
    def test_same_seed_same_stream(self):
        a = HmacDrbg(b"seed").randbytes(1000)
        b = HmacDrbg(b"seed").randbytes(1000)
        assert a == b

    def test_different_seeds_differ(self):
        assert HmacDrbg(b"seed-1").randbytes(32) != HmacDrbg(b"seed-2").randbytes(32)

    def test_chunking_invariance(self):
        """Reading 100 bytes in one call or many must give one stream."""
        one_shot = HmacDrbg(b"x").randbytes(100)
        drbg = HmacDrbg(b"x")
        pieces = b"".join(drbg.randbytes(n) for n in (1, 2, 3, 4, 90))
        # NOTE: HMAC-DRBG reseeds its internal state after each generate
        # call, so per-call chunking legitimately changes the stream; the
        # guarantee is per call-sequence determinism, which the repeat
        # below checks.
        drbg2 = HmacDrbg(b"x")
        pieces2 = b"".join(drbg2.randbytes(n) for n in (1, 2, 3, 4, 90))
        assert pieces == pieces2
        assert len(one_shot) == len(pieces) == 100

    def test_seed_types(self):
        assert HmacDrbg("text").randbytes(8) == HmacDrbg("text").randbytes(8)
        assert HmacDrbg(12345).randbytes(8) == HmacDrbg(12345).randbytes(8)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"s")
        b = HmacDrbg(b"s")
        b.reseed(b"extra entropy")
        assert a.randbytes(32) != b.randbytes(32)

    def test_fork_is_independent_and_deterministic(self):
        parent1 = HmacDrbg(b"p")
        parent2 = HmacDrbg(b"p")
        child1 = parent1.fork(b"alice")
        child2 = parent2.fork(b"alice")
        assert child1.randbytes(16) == child2.randbytes(16)
        assert parent1.fork(b"bob").randbytes(16) != parent1.fork(b"carol").randbytes(16)

    def test_fork_does_not_disturb_parent(self):
        plain = HmacDrbg(b"p").randbytes(32)
        forked_parent = HmacDrbg(b"p")
        forked_parent.fork(b"child")
        assert forked_parent.randbytes(32) == plain

    def test_zero_bytes(self):
        assert HmacDrbg(b"z").randbytes(0) == b""

    def test_negative_raises(self):
        with pytest.raises(MathError):
            HmacDrbg(b"z").randbytes(-1)


class TestIntegerHelpers:
    @given(st.integers(1, 256))
    @settings(max_examples=50)
    def test_getrandbits_range(self, k):
        value = HmacDrbg(b"bits").getrandbits(k)
        assert 0 <= value < 2**k

    def test_getrandbits_requires_positive(self):
        with pytest.raises(MathError):
            HmacDrbg(b"b").getrandbits(0)

    @given(st.integers(1, 10**12))
    @settings(max_examples=100)
    def test_randbelow_range(self, n):
        assert 0 <= HmacDrbg(b"below").randbelow(n) < n

    def test_randbelow_rejects_nonpositive(self):
        with pytest.raises(MathError):
            HmacDrbg(b"x").randbelow(0)

    def test_randint_inclusive(self):
        drbg = HmacDrbg(b"ri")
        values = {drbg.randint(3, 5) for _ in range(100)}
        assert values == {3, 4, 5}

    def test_randint_single_point(self):
        assert HmacDrbg(b"x").randint(7, 7) == 7

    def test_randint_bad_range(self):
        with pytest.raises(MathError):
            HmacDrbg(b"x").randint(5, 3)

    def test_randbelow_roughly_uniform(self):
        """Coarse sanity: all residues of a small modulus appear."""
        drbg = HmacDrbg(b"u")
        counts = [0] * 7
        for _ in range(700):
            counts[drbg.randbelow(7)] += 1
        assert all(count > 50 for count in counts)


class TestSystemRandomSource:
    def test_randbytes_length_and_variability(self):
        source = SystemRandomSource()
        a = source.randbytes(32)
        b = source.randbytes(32)
        assert len(a) == len(b) == 32
        assert a != b  # 2^-256 false-failure probability

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            RandomSource().randbytes(1)


class TestDeriveSeed:
    """Independent child seeds for harness lanes (scheduler, loadgen)."""

    def test_deterministic(self):
        assert derive_seed(b"s", b"lane") == derive_seed(b"s", b"lane")

    def test_labels_give_independent_seeds(self):
        seeds = {
            derive_seed(b"s", label)
            for label in (b"scheduler", b"sim-fleet", b"sim-faults", b"parallel-jobs")
        }
        assert len(seeds) == 4

    def test_parent_seed_matters(self):
        assert derive_seed(b"s1", b"lane") != derive_seed(b"s2", b"lane")

    def test_str_and_bytes_equivalent(self):
        assert derive_seed("seed", "lane") == derive_seed(b"seed", b"lane")

    def test_label_concatenation_is_not_ambiguous_across_streams(self):
        # derive_seed and fork use distinct domain prefixes, so a child
        # DRBG forked under a label never collides with a derived seed.
        derived = derive_seed(b"s", b"x")
        forked = HmacDrbg(b"s").fork(b"x").randbytes(32)
        assert derived != forked

    def test_output_is_a_full_hmac_block(self):
        assert len(derive_seed(b"s", b"lane")) == 32
