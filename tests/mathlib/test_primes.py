"""Tests for primality testing and prime generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MathError, ParameterError
from repro.mathlib.primes import (
    generate_bf_prime_pair,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    next_prime,
)
from repro.mathlib.rand import HmacDrbg

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, 2**13 - 1, 2**31 - 1, 2**61 - 1, 2**89 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 561, 1105, 6601, 2**32 - 1, 2**61 + 1]
# Carmichael numbers specifically fool Fermat, not Miller-Rabin.
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341]


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_known_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAELS)
    def test_carmichael_numbers_rejected(self, n):
        assert not is_probable_prime(n)

    def test_small_range_against_sieve(self):
        limit = 2000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_probable_prime(n) == sieve[n], n

    @given(st.integers(2, 10**6))
    @settings(max_examples=200)
    def test_factor_consistency(self, n):
        """If we can find a small factor, the test must say composite."""
        for d in range(2, 1000):
            if d * d > n:
                break
            if n % d == 0:
                assert not is_probable_prime(n)
                return

    def test_large_probabilistic_path(self):
        # Above the deterministic witness bounds (> 3.3e24).
        p = 2**127 - 1  # Mersenne prime
        assert is_probable_prime(p, rng=HmacDrbg(b"mr"))
        assert not is_probable_prime(p + 2, rng=HmacDrbg(b"mr"))


class TestGeneratePrime:
    def test_bit_length_exact(self):
        for bits in (8, 16, 64, 128):
            p = generate_prime(bits, rng=HmacDrbg(bytes([bits])))
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_condition_respected(self):
        p = generate_prime(32, rng=HmacDrbg(b"c"), condition=lambda c: c % 4 == 3)
        assert p % 4 == 3

    def test_deterministic_given_seed(self):
        assert generate_prime(48, rng=HmacDrbg(b"s")) == generate_prime(
            48, rng=HmacDrbg(b"s")
        )

    def test_too_few_bits_raises(self):
        with pytest.raises(MathError):
            generate_prime(1)

    def test_impossible_condition_raises(self):
        with pytest.raises(MathError):
            generate_prime(16, rng=HmacDrbg(b"x"), condition=lambda c: False,
                           max_attempts=50)


class TestNextPrime:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 2), (1, 2), (2, 3), (3, 5), (13, 17), (7918, 7919), (7919, 7927)],
    )
    def test_values(self, n, expected):
        assert next_prime(n) == expected


class TestSafePrime:
    def test_small_safe_prime(self):
        p = generate_safe_prime(16, rng=HmacDrbg(b"safe"))
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)


class TestBfPrimePair:
    def test_properties(self):
        p, q, l = generate_bf_prime_pair(32, 72, rng=HmacDrbg(b"bf"))
        assert is_probable_prime(p) and is_probable_prime(q)
        assert p % 12 == 11
        assert (p + 1) % q == 0
        assert l * q == p + 1
        assert p.bit_length() == 72 and q.bit_length() == 32

    def test_deterministic(self):
        first = generate_bf_prime_pair(32, 72, rng=HmacDrbg(b"d"))
        second = generate_bf_prime_pair(32, 72, rng=HmacDrbg(b"d"))
        assert first == second

    def test_insufficient_gap_raises(self):
        with pytest.raises(ParameterError):
            generate_bf_prime_pair(32, 34)
