"""Shared fixtures for the test suite.

Everything uses the TOY64 parameter preset and deterministic DRBG seeds
so runs are reproducible; RSA key pairs are cached process-wide by the
deployment layer, so building a fresh deployment per test is cheap
after the first.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.ibe import setup
from repro.mathlib.rand import HmacDrbg
from repro.pairing import get_preset
from repro.sim import sanitizer as _sanitizer


@pytest.fixture(autouse=True)
def _ownership_sanitizer():
    """Every tier-1 test runs under the ownership sanitizer.

    Any scheduler-driven run that touches a tagged shard or queue from
    the wrong task raises :class:`~repro.errors.SanitizerError` instead
    of passing silently.  Tests that never enter a scheduler pay only
    one module-global read per run() call.
    """
    previous = _sanitizer.install(_sanitizer.OwnershipSanitizer())
    yield
    _sanitizer.uninstall(previous)


@pytest.fixture(scope="session")
def toy_params():
    """Session-wide TOY64 pairing parameters (read-only)."""
    return get_preset("TOY64")


@pytest.fixture(scope="session")
def master_keypair():
    """Session-wide IBE master key over TOY64 (read-only)."""
    return setup("TOY64", rng=HmacDrbg(b"tests-master"))


@pytest.fixture()
def rng():
    """A fresh deterministic DRBG per test."""
    return HmacDrbg(b"tests-rng")


def build_deployment(**overrides) -> Deployment:
    """A deployment with fast test defaults; see DeploymentConfig."""
    config = DeploymentConfig(
        preset=overrides.pop("preset", "TOY64"),
        rsa_bits=overrides.pop("rsa_bits", 768),
        seed=overrides.pop("seed", b"tests-deployment"),
        **overrides,
    )
    return Deployment.build(config)


@pytest.fixture()
def deployment():
    """A fresh TOY64 deployment per test."""
    built = build_deployment()
    yield built
    built.close()


@pytest.fixture()
def utility_world(deployment):
    """The Fig. 1 cast: three meters, three companies, paper-true grants."""
    complex_attr = lambda kind: f"{kind}-GLENBROOK-SV-CA"
    devices = {
        kind: deployment.new_smart_device(f"{kind}-GLENBROOK-001")
        for kind in ("ELECTRIC", "WATER", "GAS")
    }
    clients = {
        "c-services": deployment.new_receiving_client(
            "c-services",
            "pw-cs",
            attributes=[complex_attr(k) for k in ("ELECTRIC", "WATER", "GAS")],
        ),
        "electric-gas": deployment.new_receiving_client(
            "electric-gas",
            "pw-eg",
            attributes=[complex_attr("ELECTRIC"), complex_attr("GAS")],
        ),
        "water-resources": deployment.new_receiving_client(
            "water-resources", "pw-wr", attributes=[complex_attr("WATER")]
        ),
    }
    return deployment, devices, clients
