"""RSA, x509lite and the certificate-PKI baseline deployment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    DecryptionError,
    ParameterError,
    UnknownIdentityError,
)
from repro.mathlib.rand import HmacDrbg
from repro.pki.baseline import PkiBaselineDeployment, PkiEnvelope
from repro.pki.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_rsa_keypair,
    hybrid_open,
    hybrid_seal,
)
from repro.pki.x509lite import CertificateAuthority, Certificate, verify_chain
from repro.sim.clock import SimClock


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(768, rng=HmacDrbg(b"rsa-tests"))


class TestRsaCore:
    def test_key_material_consistent(self, keypair):
        private = keypair.private
        assert private.p * private.q == private.n
        assert private.e * private.d % ((private.p - 1) * (private.q - 1)) == 1

    def test_modulus_bit_length(self, keypair):
        assert keypair.private.n.bit_length() == 768

    @given(message=st.binary(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_oaep_roundtrip(self, keypair, message):
        ciphertext = keypair.public.encrypt(message, rng=HmacDrbg(message + b"e"))
        assert keypair.private.decrypt(ciphertext) == message

    def test_oaep_randomised(self, keypair):
        rng = HmacDrbg(b"r")
        assert keypair.public.encrypt(b"m", rng) != keypair.public.encrypt(b"m", rng)

    def test_oaep_rejects_oversized_message(self, keypair):
        limit = keypair.public.max_message_length()
        with pytest.raises(ParameterError):
            keypair.public.encrypt(bytes(limit + 1))

    def test_oaep_max_length_message_works(self, keypair):
        message = b"x" * keypair.public.max_message_length()
        ciphertext = keypair.public.encrypt(message, rng=HmacDrbg(b"max"))
        assert keypair.private.decrypt(ciphertext) == message

    def test_oaep_tamper_detected(self, keypair):
        ciphertext = bytearray(keypair.public.encrypt(b"msg", rng=HmacDrbg(b"t")))
        for position in (0, len(ciphertext) // 2, len(ciphertext) - 1):
            mutated = bytearray(ciphertext)
            mutated[position] ^= 1
            with pytest.raises(DecryptionError):
                keypair.private.decrypt(bytes(mutated))

    def test_decrypt_rejects_wrong_length(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.private.decrypt(b"short")

    def test_decrypt_rejects_out_of_range(self, keypair):
        oversized = (keypair.private.n + 1).to_bytes(keypair.private.byte_length, "big")
        with pytest.raises(DecryptionError):
            keypair.private.decrypt(oversized)

    def test_sign_verify(self, keypair):
        signature = keypair.private.sign(b"the tbs bytes")
        assert keypair.public.verify(b"the tbs bytes", signature)
        assert not keypair.public.verify(b"other bytes", signature)
        assert not keypair.public.verify(b"the tbs bytes", signature[:-1])
        assert not keypair.public.verify(b"the tbs bytes", bytes(len(signature)))

    def test_signature_deterministic(self, keypair):
        assert keypair.private.sign(b"m") == keypair.private.sign(b"m")

    def test_key_serialisation(self, keypair):
        public = RsaPublicKey.from_bytes(keypair.public.to_bytes())
        assert public.n == keypair.public.n and public.e == keypair.public.e
        private = RsaPrivateKey.from_bytes(keypair.private.to_bytes())
        assert private.d == keypair.private.d

    def test_rejects_tiny_modulus_request(self):
        with pytest.raises(ParameterError):
            generate_rsa_keypair(256)


class TestRsaHybrid:
    def test_roundtrip_large_payload(self, keypair):
        payload = b"token material far beyond OAEP capacity " * 50
        sealed = hybrid_seal(keypair.public, payload, rng=HmacDrbg(b"h"))
        assert hybrid_open(keypair.private, sealed) == payload

    def test_tamper_detected(self, keypair):
        sealed = bytearray(hybrid_seal(keypair.public, b"payload", rng=HmacDrbg(b"h")))
        sealed[-1] ^= 1
        with pytest.raises(DecryptionError):
            hybrid_open(keypair.private, bytes(sealed))

    def test_wrong_private_key_rejected(self, keypair):
        other = generate_rsa_keypair(768, rng=HmacDrbg(b"other"))
        sealed = hybrid_seal(keypair.public, b"payload", rng=HmacDrbg(b"h"))
        with pytest.raises(DecryptionError):
            hybrid_open(other.private, sealed)


class TestCertificates:
    @pytest.fixture()
    def world(self):
        clock = SimClock()
        ca = CertificateAuthority("root", rng=HmacDrbg(b"ca"), key_bits=768)
        root = ca.self_signed(clock.now_us())
        return clock, ca, root

    def test_single_link_chain(self, world):
        clock, ca, root = world
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = ca.issue("c-services", keypair.public, clock.now_us())
        verify_chain([leaf], root, clock.now_us())

    def test_intermediate_chain(self, world):
        clock, ca, root = world
        intermediate = CertificateAuthority(
            "intermediate", rng=HmacDrbg(b"int"), key_bits=768
        )
        intermediate_cert = ca.issue(
            "intermediate", intermediate.public_key, clock.now_us()
        )
        leaf_keys = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf2"))
        leaf = intermediate.issue("device-42", leaf_keys.public, clock.now_us())
        verify_chain([leaf, intermediate_cert], root, clock.now_us())

    def test_expired_certificate_rejected(self, world):
        clock, ca, root = world
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = ca.issue("x", keypair.public, clock.now_us(), lifetime_us=1000)
        clock.advance(10_000)
        with pytest.raises(AuthenticationError):
            verify_chain([leaf], root, clock.now_us())

    def test_not_yet_valid_rejected(self, world):
        clock, ca, root = world
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = ca.issue("x", keypair.public, clock.now_us() + 10_000_000)
        with pytest.raises(AuthenticationError):
            verify_chain([leaf], root, clock.now_us())

    def test_revoked_rejected(self, world):
        clock, ca, root = world
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = ca.issue("x", keypair.public, clock.now_us())
        ca.revoke(leaf.serial)
        with pytest.raises(AuthenticationError):
            verify_chain([leaf], root, clock.now_us(), crls={"root": ca.crl()})

    def test_tampered_certificate_rejected(self, world):
        clock, ca, root = world
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = ca.issue("x", keypair.public, clock.now_us())
        leaf.subject = "mallory"
        with pytest.raises(AuthenticationError):
            verify_chain([leaf], root, clock.now_us())

    def test_broken_linkage_rejected(self, world):
        clock, ca, root = world
        rogue = CertificateAuthority("rogue", rng=HmacDrbg(b"rogue"), key_bits=768)
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = rogue.issue("x", keypair.public, clock.now_us())
        with pytest.raises(AuthenticationError):
            verify_chain([leaf], root, clock.now_us())

    def test_empty_chain_rejected(self, world):
        clock, _ca, root = world
        with pytest.raises(AuthenticationError):
            verify_chain([], root, clock.now_us())

    def test_certificate_serialisation(self, world):
        clock, ca, root = world
        keypair = generate_rsa_keypair(768, rng=HmacDrbg(b"leaf"))
        leaf = ca.issue("serial-me", keypair.public, clock.now_us())
        rebuilt = Certificate.from_bytes(leaf.to_bytes())
        assert rebuilt.subject == "serial-me"
        assert rebuilt.signature == leaf.signature
        verify_chain([rebuilt], root, clock.now_us())


class TestBaselineDeployment:
    @pytest.fixture()
    def baseline(self):
        return PkiBaselineDeployment(
            rsa_bits=768, rng=HmacDrbg(b"baseline"), clock=SimClock()
        )

    def test_multi_recipient_deposit_and_retrieve(self, baseline):
        baseline.enroll_recipient("c-services")
        baseline.enroll_recipient("water-co")
        baseline.deposit(b"reading-1", ["c-services", "water-co"])
        baseline.deposit(b"reading-2", ["c-services"])
        assert baseline.retrieve("c-services") == [b"reading-1", b"reading-2"]
        assert baseline.retrieve("water-co") == [b"reading-1"]

    def test_unenrolled_recipient_rejected(self, baseline):
        with pytest.raises(UnknownIdentityError):
            baseline.deposit(b"x", ["ghost"])
        with pytest.raises(UnknownIdentityError):
            baseline.retrieve("ghost")

    def test_revocation_blocks_retrieval(self, baseline):
        baseline.enroll_recipient("victim")
        baseline.deposit(b"pre-revocation", ["victim"])
        baseline.revoke_recipient("victim")
        with pytest.raises(AccessDeniedError):
            baseline.retrieve("victim")

    def test_stats_track_operations(self, baseline):
        baseline.enroll_recipient("a")
        baseline.enroll_recipient("b")
        baseline.deposit(b"x", ["a", "b"])
        baseline.deposit(b"y", ["a"])
        assert baseline.stats["certs_issued"] == 2
        assert baseline.stats["rsa_wraps"] == 3
        # Cache: chain verified once per recipient, not per deposit.
        assert baseline.stats["chain_verifications"] == 2

    def test_cache_disabled_verifies_every_deposit(self):
        baseline = PkiBaselineDeployment(
            rsa_bits=768,
            rng=HmacDrbg(b"nocache"),
            clock=SimClock(),
            device_cert_cache=False,
        )
        baseline.enroll_recipient("a")
        baseline.deposit(b"x", ["a"])
        baseline.deposit(b"y", ["a"])
        assert baseline.stats["chain_verifications"] == 2

    def test_envelope_serialisation(self, baseline):
        baseline.enroll_recipient("a")
        envelope = baseline.deposit(b"wire", ["a"])
        rebuilt = PkiEnvelope.from_bytes(envelope.to_bytes())
        assert rebuilt.wrapped_keys.keys() == envelope.wrapped_keys.keys()
        assert rebuilt.sealed_body == envelope.sealed_body
