"""Decoder robustness: hostile bytes must raise library errors, never
leak arbitrary exceptions or accept half-parsed structures.

Two strategies per decoder: (a) fully random bytes, (b) valid encodings
with byte-level mutations (the realistic network-corruption case).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.ibe.basic_ident import BasicCiphertext
from repro.ibe.full_ident import FullCiphertext
from repro.ibe.kem import HybridCiphertext
from repro.ibe.keys import IdentityPrivateKey, PublicParams
from repro.pairing import get_preset
from repro.pki.rsa import RsaPrivateKey, RsaPublicKey
from repro.pki.x509lite import Certificate
from repro.wire.messages import (
    Authenticator,
    DepositRequest,
    DepositResponse,
    KeyRequest,
    KeyResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    RetrieveRequest,
    RetrieveResponse,
    StoredMessage,
    Ticket,
    Token,
)

PARAMS = get_preset("TOY64")

BYTE_DECODERS = [
    DepositRequest.from_bytes,
    DepositResponse.from_bytes,
    RetrieveRequest.from_bytes,
    RetrieveResponse.from_bytes,
    StoredMessage.from_bytes,
    Ticket.from_bytes,
    Token.from_bytes,
    Authenticator.from_bytes,
    PkgAuthRequest.from_bytes,
    PkgAuthResponse.from_bytes,
    KeyRequest.from_bytes,
    KeyResponse.from_bytes,
    RsaPublicKey.from_bytes,
    RsaPrivateKey.from_bytes,
    Certificate.from_bytes,
]

PARAMS_DECODERS = [
    BasicCiphertext.from_bytes,
    FullCiphertext.from_bytes,
    HybridCiphertext.from_bytes,
    IdentityPrivateKey.from_bytes,
]


@pytest.mark.parametrize("decoder", BYTE_DECODERS,
                         ids=lambda d: d.__qualname__.split(".")[0])
@given(data=st.binary(max_size=200))
@settings(max_examples=30, deadline=None)
def test_random_bytes_never_escape_error_hierarchy(decoder, data):
    try:
        decoder(data)
    except ReproError:
        pass  # the contract: a library error, with a message
    except (OverflowError, MemoryError):
        pytest.fail(f"{decoder.__qualname__} resource blowup on fuzz input")


@pytest.mark.parametrize("decoder", PARAMS_DECODERS,
                         ids=lambda d: d.__qualname__.split(".")[0])
@given(data=st.binary(max_size=200))
@settings(max_examples=30, deadline=None)
def test_random_bytes_params_decoders(decoder, data):
    try:
        decoder(data, PARAMS)
    except ReproError:
        pass
    except (OverflowError, MemoryError):
        pytest.fail(f"{decoder.__qualname__} resource blowup on fuzz input")


@given(data=st.binary(max_size=300))
@settings(max_examples=30, deadline=None)
def test_public_params_decoder_robust(data):
    try:
        PublicParams.from_bytes(data)
    except ReproError:
        pass


class TestMutationFuzz:
    """Flip each byte of a valid encoding: decode must either raise a
    ReproError or produce an object that re-encodes differently (no
    silent canonicalisation collisions)."""

    VALID = DepositRequest(
        device_id="meter",
        attribute="ATTR",
        nonce=b"n" * 16,
        ciphertext=b"c" * 32,
        timestamp_us=12345,
        mac=b"m" * 32,
    ).to_bytes()

    @given(position=st.integers(0, len(VALID) - 1), flip=st.integers(1, 255))
    @settings(max_examples=100, deadline=None)
    def test_single_byte_mutations(self, position, flip):
        mutated = bytearray(self.VALID)
        mutated[position] ^= flip
        try:
            decoded = DepositRequest.from_bytes(bytes(mutated))
        except ReproError:
            return
        assert decoded.to_bytes() != self.VALID

    def test_truncations_all_rejected_or_distinct(self):
        for cut in range(len(self.VALID)):
            try:
                decoded = DepositRequest.from_bytes(self.VALID[:cut])
            except ReproError:
                continue
            pytest.fail(f"truncation at {cut} accepted: {decoded!r}")
