"""Decoder robustness: hostile bytes must raise library errors, never
leak arbitrary exceptions or accept half-parsed structures.

Two strategies per decoder: (a) fully random bytes, (b) valid encodings
with byte-level mutations (the realistic network-corruption case).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.ibe.basic_ident import BasicCiphertext
from repro.ibe.full_ident import FullCiphertext
from repro.ibe.kem import HybridCiphertext
from repro.ibe.keys import IdentityPrivateKey, PublicParams
from repro.pairing import get_preset
from repro.pki.rsa import RsaPrivateKey, RsaPublicKey
from repro.pki.x509lite import Certificate
from repro.storage.wal import OP_DELETE, OP_STORE, WalRecord
from repro.wire.messages import (
    Authenticator,
    BatchDepositReceipt,
    BatchDepositRequest,
    BatchDepositResponse,
    BatchEntry,
    BatchItemStatus,
    DepositRequest,
    DepositResponse,
    KeyRequest,
    KeyResponse,
    PagedRetrieveRequest,
    PagedRetrieveResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    RetrieveRequest,
    RetrieveResponse,
    StoredMessage,
    Ticket,
    Token,
)

PARAMS = get_preset("TOY64")

BYTE_DECODERS = [
    DepositRequest.from_bytes,
    DepositResponse.from_bytes,
    RetrieveRequest.from_bytes,
    RetrieveResponse.from_bytes,
    StoredMessage.from_bytes,
    Ticket.from_bytes,
    Token.from_bytes,
    Authenticator.from_bytes,
    PkgAuthRequest.from_bytes,
    PkgAuthResponse.from_bytes,
    KeyRequest.from_bytes,
    KeyResponse.from_bytes,
    BatchItemStatus.from_bytes,
    BatchDepositReceipt.from_bytes,
    PagedRetrieveRequest.from_bytes,
    PagedRetrieveResponse.from_bytes,
    RsaPublicKey.from_bytes,
    RsaPrivateKey.from_bytes,
    Certificate.from_bytes,
    WalRecord.from_bytes,
]

PARAMS_DECODERS = [
    BasicCiphertext.from_bytes,
    FullCiphertext.from_bytes,
    HybridCiphertext.from_bytes,
    IdentityPrivateKey.from_bytes,
]


@pytest.mark.parametrize("decoder", BYTE_DECODERS,
                         ids=lambda d: d.__qualname__.split(".")[0])
@given(data=st.binary(max_size=200))
@settings(max_examples=30, deadline=None)
def test_random_bytes_never_escape_error_hierarchy(decoder, data):
    try:
        decoder(data)
    except ReproError:
        pass  # the contract: a library error, with a message
    except (OverflowError, MemoryError):
        pytest.fail(f"{decoder.__qualname__} resource blowup on fuzz input")


@pytest.mark.parametrize("decoder", PARAMS_DECODERS,
                         ids=lambda d: d.__qualname__.split(".")[0])
@given(data=st.binary(max_size=200))
@settings(max_examples=30, deadline=None)
def test_random_bytes_params_decoders(decoder, data):
    try:
        decoder(data, PARAMS)
    except ReproError:
        pass
    except (OverflowError, MemoryError):
        pytest.fail(f"{decoder.__qualname__} resource blowup on fuzz input")


@given(data=st.binary(max_size=300))
@settings(max_examples=30, deadline=None)
def test_public_params_decoder_robust(data):
    try:
        PublicParams.from_bytes(data)
    except ReproError:
        pass


class TestMutationFuzz:
    """Flip each byte of a valid encoding: decode must either raise a
    ReproError or produce an object that re-encodes differently (no
    silent canonicalisation collisions)."""

    VALID = DepositRequest(
        device_id="meter",
        attribute="ATTR",
        nonce=b"n" * 16,
        ciphertext=b"c" * 32,
        timestamp_us=12345,
        mac=b"m" * 32,
    ).to_bytes()

    @given(position=st.integers(0, len(VALID) - 1), flip=st.integers(1, 255))
    @settings(max_examples=100, deadline=None)
    def test_single_byte_mutations(self, position, flip):
        mutated = bytearray(self.VALID)
        mutated[position] ^= flip
        try:
            decoded = DepositRequest.from_bytes(bytes(mutated))
        except ReproError:
            return
        assert decoded.to_bytes() != self.VALID

    def test_truncations_all_rejected_or_distinct(self):
        for cut in range(len(self.VALID)):
            try:
                decoded = DepositRequest.from_bytes(self.VALID[:cut])
            except ReproError:
                continue
            pytest.fail(f"truncation at {cut} accepted: {decoded!r}")


class TestWalRecordMutationFuzz:
    """The WAL frame is stricter than the plain wire messages: the CRC
    covers the whole body, so EVERY single-bit flip must raise — a
    corrupted shipped frame may never be applied to a replica."""

    VALID = WalRecord(lsn=42, op=OP_STORE, payload=b"replicated-record").to_bytes()

    @given(position=st.integers(0, len(VALID) - 1), flip=st.integers(1, 255))
    @settings(max_examples=150, deadline=None)
    def test_every_byte_mutation_raises(self, position, flip):
        mutated = bytearray(self.VALID)
        mutated[position] ^= flip
        with pytest.raises(ReproError):
            WalRecord.from_bytes(bytes(mutated))

    def test_every_truncation_raises(self):
        for cut in range(len(self.VALID)):
            with pytest.raises(ReproError):
                WalRecord.from_bytes(self.VALID[:cut])

    def test_trailing_bytes_raise(self):
        with pytest.raises(ReproError):
            WalRecord.from_bytes(self.VALID + b"\x00")


# -- encode/decode round-trip properties over every wire dataclass ----------

U64 = st.integers(0, 2**64 - 1)
SHORT_TEXT = st.text(max_size=16)
SHORT_BYTES = st.binary(max_size=48)

STORED_MESSAGES = st.builds(
    StoredMessage,
    message_id=U64,
    attribute_id=U64,
    nonce=SHORT_BYTES,
    ciphertext=SHORT_BYTES,
    deposited_at_us=U64,
)
BATCH_ENTRIES = st.builds(
    BatchEntry, attribute=SHORT_TEXT, nonce=SHORT_BYTES, ciphertext=SHORT_BYTES
)
BATCH_ITEM_STATUSES = st.builds(
    BatchItemStatus,
    status=st.integers(0, 255),
    message_id=U64,
    shard=st.integers(0, 2**32 - 1),
    error=SHORT_TEXT,
)

MESSAGE_STRATEGIES = [
    (
        DepositRequest,
        st.builds(
            DepositRequest,
            device_id=SHORT_TEXT,
            attribute=SHORT_TEXT,
            nonce=SHORT_BYTES,
            ciphertext=SHORT_BYTES,
            timestamp_us=U64,
            mac=SHORT_BYTES,
            signature=SHORT_BYTES,
        ),
    ),
    (
        DepositResponse,
        st.builds(
            DepositResponse,
            accepted=st.booleans(),
            message_id=U64,
            error=SHORT_TEXT,
        ),
    ),
    (
        RetrieveRequest,
        st.builds(
            RetrieveRequest,
            rc_id=SHORT_TEXT,
            rc_public_key=SHORT_BYTES,
            auth_blob=SHORT_BYTES,
            since_us=U64,
            assertion=SHORT_BYTES,
        ),
    ),
    (StoredMessage, STORED_MESSAGES),
    (
        RetrieveResponse,
        st.builds(
            RetrieveResponse,
            token=SHORT_BYTES,
            rc_nonce=SHORT_BYTES,
            messages=st.lists(STORED_MESSAGES, max_size=3),
        ),
    ),
    (
        Ticket,
        st.builds(
            Ticket,
            rc_id=SHORT_TEXT,
            session_key=SHORT_BYTES,
            attribute_map=st.dictionaries(U64, SHORT_TEXT, max_size=4),
            issued_at_us=U64,
            lifetime_us=U64,
        ),
    ),
    (Token, st.builds(Token, session_key=SHORT_BYTES, sealed_ticket=SHORT_BYTES)),
    (Authenticator, st.builds(Authenticator, rc_id=SHORT_TEXT, timestamp_us=U64)),
    (
        PkgAuthRequest,
        st.builds(
            PkgAuthRequest,
            rc_id=SHORT_TEXT,
            sealed_ticket=SHORT_BYTES,
            sealed_authenticator=SHORT_BYTES,
        ),
    ),
    (
        PkgAuthResponse,
        st.builds(
            PkgAuthResponse,
            ok=st.booleans(),
            session_id=SHORT_BYTES,
            error=SHORT_TEXT,
        ),
    ),
    (
        KeyRequest,
        st.builds(
            KeyRequest, session_id=SHORT_BYTES, attribute_id=U64, nonce=SHORT_BYTES
        ),
    ),
    (
        KeyResponse,
        st.builds(
            KeyResponse, ok=st.booleans(), sealed_key=SHORT_BYTES, error=SHORT_TEXT
        ),
    ),
    (BatchEntry, BATCH_ENTRIES),
    (
        BatchDepositRequest,
        st.builds(
            BatchDepositRequest,
            device_id=SHORT_TEXT,
            timestamp_us=U64,
            entries=st.lists(BATCH_ENTRIES, max_size=3),
            mac=SHORT_BYTES,
        ),
    ),
    (
        BatchDepositResponse,
        st.builds(
            BatchDepositResponse,
            accepted=st.booleans(),
            message_ids=st.lists(U64, max_size=5),
            error=SHORT_TEXT,
        ),
    ),
    (BatchItemStatus, BATCH_ITEM_STATUSES),
    (
        BatchDepositReceipt,
        st.builds(
            BatchDepositReceipt,
            statuses=st.lists(BATCH_ITEM_STATUSES, max_size=4),
            error=SHORT_TEXT,
        ),
    ),
    (
        PagedRetrieveRequest,
        st.builds(
            PagedRetrieveRequest,
            rc_id=SHORT_TEXT,
            rc_public_key=SHORT_BYTES,
            auth_blob=SHORT_BYTES,
            page_size=st.integers(0, 2**32 - 1),
            cursor=U64,
            since_us=U64,
            assertion=SHORT_BYTES,
        ),
    ),
    (
        PagedRetrieveResponse,
        st.builds(
            PagedRetrieveResponse,
            token=SHORT_BYTES,
            rc_nonce=SHORT_BYTES,
            next_cursor=U64,
            has_more=st.booleans(),
            messages=st.lists(STORED_MESSAGES, max_size=3),
        ),
    ),
    (
        WalRecord,
        st.builds(
            WalRecord,
            lsn=U64,
            op=st.sampled_from([OP_STORE, OP_DELETE]),
            payload=SHORT_BYTES,
        ),
    ),
]

MESSAGE_IDS = [cls.__name__ for cls, _ in MESSAGE_STRATEGIES]


@pytest.mark.parametrize(("cls", "strategy"), MESSAGE_STRATEGIES, ids=MESSAGE_IDS)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_roundtrip_every_wire_dataclass(cls, strategy, data):
    message = data.draw(strategy)
    assert cls.from_bytes(message.to_bytes()) == message


@pytest.mark.parametrize(("cls", "strategy"), MESSAGE_STRATEGIES, ids=MESSAGE_IDS)
@given(data=st.data())
@settings(max_examples=10, deadline=None)
def test_truncations_rejected_every_wire_dataclass(cls, strategy, data):
    encoded = data.draw(strategy).to_bytes()
    for cut in range(len(encoded)):
        try:
            decoded = cls.from_bytes(encoded[:cut])
        except ReproError:
            continue
        pytest.fail(f"{cls.__name__} truncation at {cut} accepted: {decoded!r}")


@pytest.mark.parametrize(("cls", "strategy"), MESSAGE_STRATEGIES, ids=MESSAGE_IDS)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_bit_flips_rejected_or_decode_differently(cls, strategy, data):
    """A single flipped bit must never yield an object that re-encodes
    to the original bytes — the property the chaos corruption relies on."""
    encoded = data.draw(strategy).to_bytes()
    position = data.draw(st.integers(0, len(encoded) - 1))
    mutated = bytearray(encoded)
    mutated[position] ^= 1 << data.draw(st.integers(0, 7))
    try:
        decoded = cls.from_bytes(bytes(mutated))
    except ReproError:
        return
    assert decoded.to_bytes() != encoded
