"""Epoch fields on the wire: optional-trailing encoding, epoch-0 interop.

The TLV-extension rule for the lifecycle layer: epoch 0 is never
emitted, so every epoch-0 encoding is byte-identical to the
pre-lifecycle format — old peers parse new frames and new peers parse
old frames.  Non-zero epochs append to the frame tail and round-trip.
"""

from repro.core.conventions import compute_deposit_mac, identity_string
from repro.wire.messages import (
    BatchDepositRequest,
    BatchEntry,
    DepositRequest,
    KeyRequest,
    StoredMessage,
    Ticket,
)

NONCE = b"wire-epoch-nonce"


def _deposit(epoch=0):
    return DepositRequest(
        device_id="meter-7",
        attribute="ELECTRIC-W-SV",
        nonce=NONCE,
        ciphertext=b"opaque-ct",
        timestamp_us=1234567,
        mac=b"m" * 20,
        epoch=epoch,
    )


class TestEpochZeroInterop:
    def test_epoch_zero_encodings_are_legacy_bytes(self):
        # Epoch 0 adds nothing: the frames are the exact pre-epoch bytes.
        for zero, nonzero in [
            (_deposit(0), _deposit(3)),
            (
                StoredMessage(1, 2, NONCE, b"ct", 99, epoch=0),
                StoredMessage(1, 2, NONCE, b"ct", 99, epoch=3),
            ),
            (
                KeyRequest(b"sess", 5, NONCE, epoch=0),
                KeyRequest(b"sess", 5, NONCE, epoch=3),
            ),
            (
                BatchEntry("A", NONCE, b"ct", epoch=0),
                BatchEntry("A", NONCE, b"ct", epoch=3),
            ),
        ]:
            encoded = zero.to_bytes()
            assert len(encoded) < len(nonzero.to_bytes())
            decoded = type(zero).from_bytes(encoded)
            assert decoded.epoch == 0
            assert decoded.to_bytes() == encoded

    def test_identity_string_epoch_zero_is_legacy(self):
        assert identity_string("A", NONCE, 0) == identity_string("A", NONCE)
        assert identity_string("A", NONCE, 1) != identity_string("A", NONCE)

    def test_ticket_epoch_and_policy_version_travel_together(self):
        base = dict(
            rc_id="rc-1",
            session_key=b"k" * 16,
            attribute_map={3: "WATER-W-SV", 9: "GAS-W-SV"},
            issued_at_us=1000,
            lifetime_us=2000,
        )
        legacy = Ticket(**base)
        stamped = Ticket(**base, epoch=2, policy_version=17)
        assert len(legacy.to_bytes()) < len(stamped.to_bytes())

        decoded = Ticket.from_bytes(stamped.to_bytes())
        assert (decoded.epoch, decoded.policy_version) == (2, 17)
        assert decoded.attribute_map == base["attribute_map"]
        # A version stamp alone still forces the pair onto the wire —
        # the reader must never see a version without its epoch.
        versioned = Ticket(**base, policy_version=4)
        round_trip = Ticket.from_bytes(versioned.to_bytes())
        assert (round_trip.epoch, round_trip.policy_version) == (0, 4)


class TestNonZeroEpochRoundTrip:
    def test_deposit_round_trip(self):
        decoded = DepositRequest.from_bytes(_deposit(5).to_bytes())
        assert decoded.epoch == 5
        assert decoded.attribute == "ELECTRIC-W-SV"

    def test_batch_request_round_trip(self):
        request = BatchDepositRequest(
            device_id="meter-7",
            timestamp_us=777,
            entries=[
                BatchEntry("A", NONCE, b"ct-a", epoch=2),
                BatchEntry("B", NONCE, b"ct-b"),
            ],
        )
        request.mac = compute_deposit_mac(b"k" * 16, request.mac_payload())
        decoded = BatchDepositRequest.from_bytes(request.to_bytes())
        assert [entry.epoch for entry in decoded.entries] == [2, 0]
        assert decoded.mac_payload() == request.mac_payload()

    def test_mac_payload_binds_the_epoch(self):
        stamped = _deposit(5)
        restamped = _deposit(6)
        assert stamped.mac_payload() != restamped.mac_payload()
        # ...and the epoch-0 payload is the exact legacy MAC input.
        legacy_payload = _deposit(0).mac_payload()
        assert stamped.mac_payload().startswith(legacy_payload)
