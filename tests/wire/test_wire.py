"""The TLV codec and every protocol message's canonical encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, EncodingError
from repro.wire import (
    Authenticator,
    DepositRequest,
    DepositResponse,
    KeyRequest,
    KeyResponse,
    PkgAuthRequest,
    PkgAuthResponse,
    Reader,
    RetrieveRequest,
    RetrieveResponse,
    StoredMessage,
    Ticket,
    Token,
    Writer,
)


class TestCodecPrimitives:
    @given(value=st.integers(0, 255))
    def test_u8_roundtrip(self, value):
        assert Reader(Writer().u8(value).getvalue()).u8() == value

    @given(value=st.integers(0, 2**32 - 1))
    def test_u32_roundtrip(self, value):
        assert Reader(Writer().u32(value).getvalue()).u32() == value

    @given(value=st.integers(0, 2**64 - 1))
    def test_u64_roundtrip(self, value):
        assert Reader(Writer().u64(value).getvalue()).u64() == value

    @given(value=st.binary(max_size=500))
    def test_blob_roundtrip(self, value):
        assert Reader(Writer().blob(value).getvalue()).blob() == value

    @given(value=st.text(max_size=100))
    def test_text_roundtrip(self, value):
        assert Reader(Writer().text(value).getvalue()).text() == value

    @given(value=st.integers(0, 2**512))
    @settings(max_examples=40)
    def test_bigint_roundtrip(self, value):
        assert Reader(Writer().bigint(value).getvalue()).bigint() == value

    @given(values=st.lists(st.binary(max_size=30), max_size=10))
    def test_blob_list_roundtrip(self, values):
        assert Reader(Writer().blob_list(values).getvalue()).blob_list() == values

    @given(value=st.booleans())
    def test_bool_roundtrip(self, value):
        assert Reader(Writer().bool(value).getvalue()).bool() is value

    def test_sequencing(self):
        payload = Writer().u8(7).text("id").blob(b"xyz").u64(99).getvalue()
        reader = Reader(payload)
        assert (reader.u8(), reader.text(), reader.blob(), reader.u64()) == (
            7, "id", b"xyz", 99,
        )
        reader.finish()


class TestCodecErrors:
    def test_out_of_range_writes_rejected(self):
        with pytest.raises(EncodingError):
            Writer().u8(256)
        with pytest.raises(EncodingError):
            Writer().u32(2**32)
        with pytest.raises(EncodingError):
            Writer().u64(-1)
        with pytest.raises(EncodingError):
            Writer().bigint(-5)

    def test_truncated_reads_rejected(self):
        with pytest.raises(DecodeError):
            Reader(b"\x00\x00\x00\x05ab").blob()  # claims 5, has 2
        with pytest.raises(DecodeError):
            Reader(b"\x00").u32()

    def test_trailing_bytes_rejected(self):
        reader = Reader(b"\x01\x02")
        reader.u8()
        with pytest.raises(DecodeError):
            reader.finish()

    def test_invalid_bool_rejected(self):
        with pytest.raises(DecodeError):
            Reader(b"\x02").bool()

    def test_invalid_utf8_rejected(self):
        with pytest.raises(DecodeError):
            Reader(Writer().blob(b"\xff\xfe").getvalue()).text()

    def test_blob_list_count_bomb_rejected(self):
        """A count claiming more entries than the buffer could hold must
        fail fast rather than loop/allocate."""
        with pytest.raises(DecodeError):
            Reader(b"\xff\xff\xff\xff").blob_list()

    def test_remaining_property(self):
        reader = Reader(b"abcd")
        assert reader.remaining == 4
        reader.u8()
        assert reader.remaining == 3


DEPOSIT = DepositRequest(
    device_id="ELECTRIC-GLENBROOK-001",
    attribute="ELECTRIC-GLENBROOK-SV-CA",
    nonce=b"\x01" * 16,
    ciphertext=b"\xaa" * 64,
    timestamp_us=1_700_000_000_000_000,
    mac=b"\xbb" * 32,
)


class TestMessageRoundtrips:
    @pytest.mark.parametrize(
        "message",
        [
            DEPOSIT,
            DepositResponse(accepted=True, message_id=7),
            DepositResponse(accepted=False, error="MAC mismatch"),
            RetrieveRequest(rc_id="c-services", rc_public_key=b"\x01" * 64,
                            auth_blob=b"\x02" * 48),
            StoredMessage(message_id=3, attribute_id=9, nonce=b"n" * 16,
                          ciphertext=b"c" * 80, deposited_at_us=123),
            Ticket(rc_id="rc", session_key=b"k" * 32,
                   attribute_map={1: "A1", 5: "A5"}, issued_at_us=10,
                   lifetime_us=1000),
            Token(session_key=b"k" * 32, sealed_ticket=b"t" * 90),
            Authenticator(rc_id="rc", timestamp_us=555),
            PkgAuthRequest(rc_id="rc", sealed_ticket=b"t" * 40,
                           sealed_authenticator=b"a" * 40),
            PkgAuthResponse(ok=True, session_id=b"s" * 16),
            PkgAuthResponse(ok=False, error="expired"),
            KeyRequest(session_id=b"s" * 16, attribute_id=4, nonce=b"n" * 16),
            KeyResponse(ok=True, sealed_key=b"k" * 60),
            KeyResponse(ok=False, error="denied"),
        ],
        ids=lambda message: type(message).__name__ + str(id(message))[-3:],
    )
    def test_roundtrip(self, message):
        rebuilt = type(message).from_bytes(message.to_bytes())
        assert rebuilt == message

    def test_retrieve_response_with_messages(self):
        response = RetrieveResponse(
            token=b"tok" * 20,
            rc_nonce=b"n" * 16,
            messages=[
                StoredMessage(1, 2, b"a", b"ct1", 10),
                StoredMessage(2, 2, b"b", b"ct2", 20),
            ],
        )
        rebuilt = RetrieveResponse.from_bytes(response.to_bytes())
        assert rebuilt == response

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DecodeError):
            DepositRequest.from_bytes(DEPOSIT.to_bytes() + b"x")


class TestMacPayloadCanonicality:
    def test_mac_payload_excludes_mac_field(self):
        with_mac = DEPOSIT
        without_mac = DepositRequest(**{**DEPOSIT.__dict__, "mac": b""})
        assert with_mac.mac_payload() == without_mac.mac_payload()

    def test_mac_payload_changes_with_every_protected_field(self):
        base = DEPOSIT.mac_payload()
        for field, value in [
            ("device_id", "other-device"),
            ("attribute", "OTHER-ATTR"),
            ("nonce", b"\x02" * 16),
            ("ciphertext", b"\xab" * 64),
            ("timestamp_us", 1),
        ]:
            mutated = DepositRequest(**{**DEPOSIT.__dict__, field: value})
            assert mutated.mac_payload() != base, field

    def test_no_field_concatenation_ambiguity(self):
        """'ab'+'c' and 'a'+'bc' must MAC differently (length prefixes)."""
        first = DepositRequest("ab", "c", b"", b"", 0)
        second = DepositRequest("a", "bc", b"", b"", 0)
        assert first.mac_payload() != second.mac_payload()

    def test_auth_payload_roundtrip(self):
        payload = RetrieveRequest.auth_payload("rc-1", 42, b"nonce")
        assert RetrieveRequest.parse_auth_payload(payload) == ("rc-1", 42, b"nonce")

    def test_ticket_attribute_map_order_canonical(self):
        a = Ticket("rc", b"k", {2: "B", 1: "A"}, 0, 1)
        b = Ticket("rc", b"k", {1: "A", 2: "B"}, 0, 1)
        assert a.to_bytes() == b.to_bytes()
