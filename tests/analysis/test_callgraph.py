"""Unit tests for the project-wide call graph."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    MAX_AMBIGUOUS_TARGETS,
    CallGraph,
    ModuleSource,
    module_name_for_path,
    param_names,
)

ALPHA = '''
from proj.beta import Helper, helper_func as hf


def free():
    return hf()


class Pool:
    def __init__(self):
        self._helper = Helper()

    def start(self, scheduler):
        scheduler.spawn("w-0", self.worker(0))

    def worker(self, index):
        self._helper.run()
        yield index

    def unreached(self):
        return free()
'''

BETA = '''
def helper_func():
    return 1


def deco(fn):
    return fn


@deco
def decorated():
    return helper_func()


class Base:
    def __init__(self):
        self.ready = True

    def run(self):
        return helper_func()


class Helper(Base):
    pass
'''


def build_graph(sources: dict[str, str]) -> CallGraph:
    modules = [
        ModuleSource(
            path=path,
            module=module_name_for_path(path),
            tree=ast.parse(text),
        )
        for path, text in sorted(sources.items())
    ]
    return CallGraph.build(modules)


def two_module_graph() -> CallGraph:
    return build_graph(
        {"src/proj/alpha.py": ALPHA, "src/proj/beta.py": BETA}
    )


class TestNaming:
    def test_module_name_for_path(self):
        assert module_name_for_path("src/repro/storage/wal.py") == "repro.storage.wal"
        assert module_name_for_path("src/repro/sim/__init__.py") == "repro.sim"
        assert module_name_for_path("tools/check.py") == "tools.check"

    def test_param_names_all_binding_kinds(self):
        node = ast.parse(
            "def f(a, b, /, c, *rest, d, e=1, **kw): pass"
        ).body[0]
        assert param_names(node.args) == ("a", "b", "c", "rest", "d", "e", "kw")


class TestIndexing:
    def test_functions_and_methods_indexed(self):
        graph = two_module_graph()
        assert "proj.alpha.free" in graph.functions
        assert "proj.alpha.Pool.worker" in graph.functions
        assert graph.functions["proj.alpha.Pool.worker"].is_method
        assert not graph.functions["proj.alpha.free"].is_method
        assert graph.functions["proj.alpha.Pool.worker"].params == ("self", "index")

    def test_decorated_function_indexed_by_def_name(self):
        graph = two_module_graph()
        assert "proj.beta.decorated" in graph.functions
        assert "proj.beta.helper_func" in graph.edges["proj.beta.decorated"]

    def test_attr_types_from_init_assignment(self):
        graph = two_module_graph()
        pool = graph.classes["proj.alpha.Pool"]
        assert pool.attr_types["_helper"] == "proj.beta.Helper"

    def test_bases_resolved_in_project(self):
        graph = two_module_graph()
        assert graph.classes["proj.beta.Helper"].bases == ("proj.beta.Base",)


class TestEdges:
    def test_aliased_import_resolves(self):
        graph = two_module_graph()
        assert "proj.beta.helper_func" in graph.edges["proj.alpha.free"]

    def test_constructor_edge_through_inherited_init(self):
        graph = two_module_graph()
        assert "proj.beta.Base.__init__" in graph.edges["proj.alpha.Pool.__init__"]

    def test_attr_receiver_dispatch_through_base(self):
        # self._helper.run() -> Helper has no run; found on Base.
        graph = two_module_graph()
        assert "proj.beta.Base.run" in graph.edges["proj.alpha.Pool.worker"]

    def test_ambiguous_dispatch_capped(self):
        many = "\n".join(
            f"class C{i}:\n    def common(self):\n        return {i}\n"
            for i in range(MAX_AMBIGUOUS_TARGETS + 1)
        )
        graph = build_graph(
            {
                "src/proj/many.py": many,
                "src/proj/caller.py": (
                    "def use(x):\n    return x.common()\n"
                ),
            }
        )
        assert graph.edges["proj.caller.use"] == set()

    def test_small_ambiguous_fanout_kept(self):
        graph = build_graph(
            {
                "src/proj/pair.py": (
                    "class A:\n    def poke(self):\n        return 1\n"
                    "class B:\n    def poke(self):\n        return 2\n"
                ),
                "src/proj/caller.py": "def use(x):\n    return x.poke()\n",
            }
        )
        assert graph.edges["proj.caller.use"] == {
            "proj.pair.A.poke",
            "proj.pair.B.poke",
        }


class TestQueries:
    def test_spawn_targets(self):
        graph = two_module_graph()
        assert "proj.alpha.Pool.worker" in graph.spawn_targets

    def test_reachable_maps_back_to_root(self):
        graph = two_module_graph()
        origin = graph.reachable(graph.spawn_targets)
        assert origin["proj.alpha.Pool.worker"] == "proj.alpha.Pool.worker"
        assert origin["proj.beta.Base.run"] == "proj.alpha.Pool.worker"
        assert origin["proj.beta.helper_func"] == "proj.alpha.Pool.worker"
        assert "proj.alpha.unreached" not in origin

    def test_qualname_of_def_node(self):
        graph = two_module_graph()
        info = graph.functions["proj.alpha.Pool.worker"]
        assert graph.qualname_of(info.node) == "proj.alpha.Pool.worker"

    def test_resolution_of_call_nodes(self):
        graph = two_module_graph()
        free = graph.functions["proj.alpha.free"]
        calls = [
            node for node in ast.walk(free.node) if isinstance(node, ast.Call)
        ]
        assert len(calls) == 1
        assert graph.resolution_of(calls[0]) == ("proj.beta.helper_func",)

    def test_stats_counts(self):
        graph = two_module_graph()
        stats = graph.stats()
        assert stats["functions"] == len(graph.functions)
        assert stats["classes"] == 3  # Pool, Base, Helper
        assert stats["edges"] > 0

    def test_fingerprint_changes_with_body(self):
        before = build_graph({"src/proj/x.py": "def f():\n    return 1\n"})
        after = build_graph({"src/proj/x.py": "def f():\n    return 2\n"})
        assert (
            before.functions["proj.x.f"].fingerprint
            != after.functions["proj.x.f"].fingerprint
        )
