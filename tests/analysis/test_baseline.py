"""Baseline file round-trip and the ``repro lint`` CLI contract."""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_source,
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.analysis.cli import run_lint
from repro.errors import DecodeError

DIRTY_SOURCE = "import random\nimport time\n\n\ndef now():\n    return time.time()\n"


def make_args(tmp_path: Path, tree: Path, **overrides) -> argparse.Namespace:
    defaults = dict(
        paths=[str(tree)],
        as_json=False,
        baseline=str(tmp_path / "baseline.json"),
        write_baseline=False,
        out=None,
        changed_only=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.fixture()
def dirty_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "mws"
    tree.mkdir()
    (tree / "dirty.py").write_text(DIRTY_SOURCE, encoding="utf-8")
    return tree


def test_render_load_round_trip():
    report = analyze_source(DIRTY_SOURCE, "src/repro/mws/dirty.py")
    findings = report.sorted_findings()
    assert findings
    keys = load_baseline(render_baseline(findings))
    new, baselined = split_findings(findings, keys)
    assert not new
    assert baselined == findings


def test_malformed_baseline_raises_decode_error():
    with pytest.raises(DecodeError):
        load_baseline("not json at all")
    with pytest.raises(DecodeError):
        load_baseline(json.dumps({"version": 999, "findings": []}))


def test_cli_dirty_tree_fails_then_baseline_clears_it(tmp_path, dirty_tree, capsys):
    args = make_args(tmp_path, dirty_tree)
    assert run_lint(args) == 1
    capsys.readouterr()

    assert run_lint(make_args(tmp_path, dirty_tree, write_baseline=True)) == 0
    capsys.readouterr()

    # With every finding grandfathered the same tree exits clean.
    assert run_lint(args) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_json_report_parses_and_counts(tmp_path, dirty_tree, capsys):
    out_path = tmp_path / "report.json"
    args = make_args(tmp_path, dirty_tree, as_json=True, out=str(out_path))
    assert run_lint(args) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["version"] == 2
    assert payload["counts"]["new"] == len(payload["findings"]) > 0
    reported_rules = {f["rule_id"] for f in payload["findings"]}
    assert {"RNG001", "TIME001"} <= reported_rules
    assert set(payload["rule_ids"]) >= reported_rules
    callgraph = payload["callgraph"]
    assert callgraph["functions"] > 0
    assert "edges" in callgraph and "spawn_roots" in callgraph


def test_cli_json_findings_are_deterministically_ordered(
    tmp_path, dirty_tree, capsys
):
    # Two identical runs emit byte-identical reports, and findings sort
    # by (path, line, rule_id) — rule id breaks same-line ties.
    out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
    for out_path in (out_a, out_b):
        args = make_args(tmp_path, dirty_tree, as_json=True, out=str(out_path))
        assert run_lint(args) == 1
        capsys.readouterr()
    assert out_a.read_bytes() == out_b.read_bytes()
    findings = json.loads(out_a.read_text(encoding="utf-8"))["findings"]
    keys = [(f["path"], f["line"], f["rule_id"], f["col"]) for f in findings]
    assert keys == sorted(keys)


def test_cli_changed_only_filters_and_fails_outside_git(tmp_path, dirty_tree, capsys):
    # tmp_path is not a git repository: git fails -> operational error.
    import os

    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        args = make_args(tmp_path, dirty_tree, changed_only="HEAD")
        assert run_lint(args) == 2
    finally:
        os.chdir(cwd)


def test_cli_changed_only_reports_only_touched_files(tmp_path, capsys):
    import os
    import subprocess

    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True,
            env={**os.environ, "GIT_CONFIG_GLOBAL": "/dev/null",
                 "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
        )

    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "committed.py").write_text(DIRTY_SOURCE, encoding="utf-8")
    git("init", "-q")
    git("add", ".")
    git("commit", "-q", "-m", "seed")
    # One untracked dirty file on top of the committed dirty one.
    (tree / "fresh.py").write_text(DIRTY_SOURCE, encoding="utf-8")

    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        out_path = tmp_path / "changed.json"
        args = make_args(
            tmp_path, tree, as_json=True, out=str(out_path),
            changed_only="HEAD",
        )
        assert run_lint(args) == 1
        capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        touched = {f["path"] for f in payload["findings"]}
        assert touched == {"pkg/fresh.py"}
        # The analysis itself stayed whole-program: both files scanned.
        assert payload["files_scanned"] == 2
    finally:
        os.chdir(cwd)


def test_cli_missing_path_is_operational_error(tmp_path):
    args = make_args(tmp_path, tmp_path / "does-not-exist")
    assert run_lint(args) == 2


def test_cli_corrupt_baseline_is_operational_error(tmp_path, dirty_tree):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{", encoding="utf-8")
    args = make_args(tmp_path, dirty_tree, baseline=str(baseline))
    assert run_lint(args) == 2
