"""Baseline file round-trip and the ``repro lint`` CLI contract."""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_source,
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.analysis.cli import run_lint
from repro.errors import DecodeError

DIRTY_SOURCE = "import random\nimport time\n\n\ndef now():\n    return time.time()\n"


def make_args(tmp_path: Path, tree: Path, **overrides) -> argparse.Namespace:
    defaults = dict(
        paths=[str(tree)],
        as_json=False,
        baseline=str(tmp_path / "baseline.json"),
        write_baseline=False,
        out=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.fixture()
def dirty_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "mws"
    tree.mkdir()
    (tree / "dirty.py").write_text(DIRTY_SOURCE, encoding="utf-8")
    return tree


def test_render_load_round_trip():
    report = analyze_source(DIRTY_SOURCE, "src/repro/mws/dirty.py")
    findings = report.sorted_findings()
    assert findings
    keys = load_baseline(render_baseline(findings))
    new, baselined = split_findings(findings, keys)
    assert not new
    assert baselined == findings


def test_malformed_baseline_raises_decode_error():
    with pytest.raises(DecodeError):
        load_baseline("not json at all")
    with pytest.raises(DecodeError):
        load_baseline(json.dumps({"version": 999, "findings": []}))


def test_cli_dirty_tree_fails_then_baseline_clears_it(tmp_path, dirty_tree, capsys):
    args = make_args(tmp_path, dirty_tree)
    assert run_lint(args) == 1
    capsys.readouterr()

    assert run_lint(make_args(tmp_path, dirty_tree, write_baseline=True)) == 0
    capsys.readouterr()

    # With every finding grandfathered the same tree exits clean.
    assert run_lint(args) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_json_report_parses_and_counts(tmp_path, dirty_tree, capsys):
    out_path = tmp_path / "report.json"
    args = make_args(tmp_path, dirty_tree, as_json=True, out=str(out_path))
    assert run_lint(args) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["counts"]["new"] == len(payload["findings"]) > 0
    reported_rules = {f["rule_id"] for f in payload["findings"]}
    assert {"RNG001", "TIME001"} <= reported_rules
    assert set(payload["rule_ids"]) >= reported_rules


def test_cli_missing_path_is_operational_error(tmp_path):
    args = make_args(tmp_path, tmp_path / "does-not-exist")
    assert run_lint(args) == 2


def test_cli_corrupt_baseline_is_operational_error(tmp_path, dirty_tree):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{", encoding="utf-8")
    args = make_args(tmp_path, dirty_tree, baseline=str(baseline))
    assert run_lint(args) == 2
