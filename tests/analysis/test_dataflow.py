"""Unit tests for the worklist dataflow pass and guard dominance."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, ModuleSource, module_name_for_path
from repro.analysis.dataflow import (
    SummaryCache,
    ValueFlow,
    compute_taint_summaries,
    guard_dominates,
    make_call_verdict,
)
from repro.analysis.dataflow import test_mentions as mentions  # noqa: F401
# (aliased so pytest does not collect the production helper as a test)

NO_NONSECRET = lambda path: frozenset()


def build_graph(sources: dict[str, str]) -> CallGraph:
    modules = [
        ModuleSource(
            path=path,
            module=module_name_for_path(path),
            tree=ast.parse(text),
        )
        for path, text in sorted(sources.items())
    ]
    return CallGraph.build(modules)


def summarise(sources: dict[str, str], cache: SummaryCache | None = None):
    graph = build_graph(sources)
    return graph, compute_taint_summaries(graph, NO_NONSECRET, cache=cache)


class TestTaintSummaries:
    def test_direct_source_call_returns_secret(self):
        _graph, summaries = summarise(
            {"src/p/keys.py": (
                "def fetch(store):\n"
                "    return extract_point(store, b'id')\n"
            )}
        )
        assert summaries["p.keys.fetch"].returns_secret

    def test_param_flow_indices(self):
        _graph, summaries = summarise(
            {"src/p/mix.py": (
                "def pick(first, second):\n"
                "    return second\n"
            )}
        )
        assert summaries["p.mix.pick"].param_flow == frozenset({1})

    def test_transitive_across_modules(self):
        # extract_point -> fetch -> relay -> serve: three hops, two
        # module boundaries, all secret.
        _graph, summaries = summarise(
            {
                "src/p/keys.py": (
                    "def fetch(store):\n"
                    "    return extract_point(store, b'id')\n"
                ),
                "src/p/mid.py": (
                    "from p.keys import fetch\n"
                    "def relay(store):\n"
                    "    return fetch(store)\n"
                ),
                "src/p/top.py": (
                    "from p.mid import relay\n"
                    "def serve(store):\n"
                    "    value = relay(store)\n"
                    "    return value\n"
                ),
            }
        )
        assert summaries["p.mid.relay"].returns_secret
        assert summaries["p.top.serve"].returns_secret
        # The trace names the callee chain the taint came through.
        assert "p.mid.relay" in summaries["p.top.serve"].trace

    def test_mutual_recursion_converges(self):
        _graph, summaries = summarise(
            {"src/p/loop.py": (
                "def ping(n):\n"
                "    if n == 0:\n"
                "        return extract_point(n, b'x')\n"
                "    return pong(n - 1)\n"
                "def pong(n):\n"
                "    return ping(n)\n"
            )}
        )
        assert summaries["p.loop.ping"].returns_secret
        assert summaries["p.loop.pong"].returns_secret

    def test_star_args_forwarding_flows(self):
        graph, summaries = summarise(
            {"src/p/fwd.py": (
                "def inner(value):\n"
                "    return value\n"
                "def outer(*args):\n"
                "    return inner(*args)\n"
            )}
        )
        assert summaries["p.fwd.inner"].param_flow == frozenset({0})
        assert summaries["p.fwd.outer"].param_flow == frozenset({0})

    def test_clean_function_cuts_taint(self):
        graph, summaries = summarise(
            {"src/p/clean.py": (
                "def count(items):\n"
                "    return len(items)\n"
                "def use(session_key):\n"
                "    return count(session_key)\n"
            )}
        )
        assert not summaries["p.clean.count"].returns_secret
        assert summaries["p.clean.count"].param_flow == frozenset()
        assert not summaries["p.clean.use"].returns_secret

    def test_summary_cache_hits_on_revisit(self):
        cache = SummaryCache()
        sources = {
            "src/p/keys.py": (
                "def fetch(store):\n"
                "    return extract_point(store, b'id')\n"
            ),
            "src/p/top.py": (
                "from p.keys import fetch\n"
                "def serve(store):\n"
                "    return fetch(store)\n"
            ),
        }
        summarise(sources, cache)
        first_hits = cache.hits
        # Second full run over identical sources: every fingerprint and
        # dep stamp matches, so the fixed point is pure cache replay.
        summarise(sources, cache)
        assert cache.hits > first_hits
        assert cache.stats()["summaries_cached"] >= 2


class TestCallVerdict:
    def test_unresolved_call_is_none(self):
        graph, summaries = summarise({"src/p/only.py": "def f():\n    return 1\n"})
        verdict = make_call_verdict(graph, summaries)
        orphan = ast.parse("mystery()").body[0].value
        assert verdict(orphan, None) is None

    def test_resolved_clean_call_is_definite_false(self):
        graph, summaries = summarise(
            {"src/p/two.py": (
                "def callee():\n"
                "    return 1\n"
                "def caller():\n"
                "    return callee()\n"
            )}
        )
        verdict = make_call_verdict(graph, summaries)
        info = graph.functions["p.two.caller"]
        call = next(
            node for node in ast.walk(info.node) if isinstance(node, ast.Call)
        )
        assert verdict(call, None) == (False, ())


def guard_case(source: str):
    """Parse one function and return (func_node, the marked call)."""
    func = ast.parse(source).body[0]
    target = next(
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "touch"
    )
    return func, target


MENTIONS_LIVE = lambda test: mentions(test, ("live_workers",))


class TestGuardDominance:
    def test_nested_if_guard(self):
        func, target = guard_case(
            "def f(self):\n"
            "    if self._live_workers:\n"
            "        touch()\n"
        )
        assert guard_dominates(func, target, MENTIONS_LIVE)

    def test_early_exit_sibling_guard(self):
        func, target = guard_case(
            "def f(self):\n"
            "    if self._live_workers:\n"
            "        raise RuntimeError('busy')\n"
            "    touch()\n"
        )
        assert guard_dominates(func, target, MENTIONS_LIVE)

    def test_early_exit_at_outer_nesting_level(self):
        func, target = guard_case(
            "def f(self):\n"
            "    if self._live_workers:\n"
            "        return None\n"
            "    for item in self._items:\n"
            "        touch()\n"
        )
        assert guard_dominates(func, target, MENTIONS_LIVE)

    def test_unguarded_is_not_dominated(self):
        func, target = guard_case(
            "def f(self):\n"
            "    touch()\n"
            "    if self._live_workers:\n"
            "        return None\n"
        )
        assert not guard_dominates(func, target, MENTIONS_LIVE)

    def test_non_exiting_if_does_not_count(self):
        func, target = guard_case(
            "def f(self):\n"
            "    if self._live_workers:\n"
            "        log()\n"
            "    touch()\n"
        )
        assert not guard_dominates(func, target, MENTIONS_LIVE)

    def test_test_mentions_names_and_attributes(self):
        test = ast.parse("self._live_workers > 0").body[0].value
        assert mentions(test, ("live_workers",))
        test = ast.parse("count > 0").body[0].value
        assert not mentions(test, ("live_workers",))


class TestValueFlow:
    SOURCES = frozenset({"to_mont"})
    BARRIERS = frozenset({"from_mont"})

    def flow(self, source: str) -> ValueFlow:
        return ValueFlow(
            ast.parse(source).body,
            source_calls=self.SOURCES,
            barrier_calls=self.BARRIERS,
        )

    def test_source_propagates_through_assignments(self):
        flow = self.flow(
            "am = to_mont(a)\n"
            "bm = am\n"
            "cm, dm = bm, am\n"
        )
        assert flow.tainted == {"am", "bm", "cm", "dm"}

    def test_barrier_cuts(self):
        flow = self.flow(
            "am = to_mont(a)\n"
            "plain = from_mont(am)\n"
        )
        assert "am" in flow.tainted
        assert "plain" not in flow.tainted

    def test_binop_and_subscript_propagate(self):
        flow = self.flow(
            "am = to_mont(a)\n"
            "sum_ = am + am\n"
            "table = [am]\n"
            "entry = table[0]\n"
        )
        assert {"sum_", "table", "entry"} <= flow.tainted
