"""Engine-level behaviour: cross-module findings and the parse-once bug fix."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.engine import SourceModule


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for name, text in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return tmp_path


class TestCrossModuleTaint:
    def test_branch_on_secret_from_another_module_traces(self, tmp_path):
        # The secret is minted in keys.py; the offending branch lives
        # two calls away in service.py.  Only the whole-program summary
        # pass can see it — and the finding must carry the chain.
        tree = write_tree(
            tmp_path,
            {
                "keys.py": (
                    "def fetch_key(store):\n"
                    "    return extract_point(store, b'id')\n"
                ),
                "mid.py": (
                    "from keys import fetch_key\n"
                    "\n"
                    "def relay(store):\n"
                    "    return fetch_key(store)\n"
                ),
                "service.py": (
                    "from mid import relay\n"
                    "\n"
                    "def handle(store):\n"
                    "    value = relay(store)\n"
                    "    if value:\n"
                    "        return 1\n"
                    "    return 0\n"
                ),
            },
        )
        report = analyze_paths([tree], root=tree)
        ct001 = [
            f for f in report.findings
            if f.rule_id == "CT001" and f.path == "service.py"
        ]
        assert ct001, [f.render() for f in report.findings]
        message = ct001[0].message
        assert "[secret flows via" in message
        assert "mid.relay" in message
        assert "keys.fetch_key" in message

    def test_single_module_has_no_cross_finding(self, tmp_path):
        # Same branch without the tainted callee: no CT001.
        tree = write_tree(
            tmp_path,
            {
                "service.py": (
                    "def handle(store):\n"
                    "    value = lookup(store)\n"
                    "    if value:\n"
                    "        return 1\n"
                    "    return 0\n"
                ),
            },
        )
        report = analyze_paths([tree], root=tree)
        assert not [f for f in report.findings if f.rule_id == "CT001"]


class TestParseOnce:
    def test_each_file_parsed_exactly_once(self, tmp_path, monkeypatch):
        # The shared SourceModule cache is the fix for the repeated-parse
        # bug: N files, N parses — however many rules run over them.
        tree = write_tree(
            tmp_path,
            {
                "one.py": "def a():\n    return 1\n",
                "two.py": "def b():\n    return a()\n",
                "pkg/three.py": "import time\n\ndef c():\n    return time.time()\n",
            },
        )
        calls: list[str] = []
        real_parse = SourceModule.parse.__func__

        def counting_parse(source, path):
            calls.append(path)
            return real_parse(SourceModule, source, path)

        monkeypatch.setattr(SourceModule, "parse", staticmethod(counting_parse))
        report = analyze_paths([tree], root=tree)
        assert report.files_scanned == 3
        assert sorted(calls) == ["one.py", "pkg/three.py", "two.py"]

    def test_ast_parse_called_once_per_file(self, tmp_path, monkeypatch):
        # Belt and braces at the stdlib level: no rule or project pass
        # re-parses source text behind the cache's back.
        tree = write_tree(
            tmp_path,
            {
                "one.py": "def a():\n    return 1\n",
                "two.py": "def b():\n    return 2\n",
            },
        )
        real_parse = ast.parse
        counts: dict[str, int] = {}

        def counting(source, filename="<unknown>", *args, **kwargs):
            counts[filename] = counts.get(filename, 0) + 1
            return real_parse(source, filename, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting)
        analyze_paths([tree], root=tree)
        per_file = {
            name: count for name, count in counts.items() if name.endswith(".py")
        }
        assert all(count == 1 for count in per_file.values()), per_file
        assert len(per_file) == 2
