"""API002 negative: __all__ matches the public surface exactly."""

__all__ = ["exported", "also_exported"]


def exported() -> int:
    return 1


def also_exported() -> int:
    return 2


def _private_helper() -> int:
    return 3
