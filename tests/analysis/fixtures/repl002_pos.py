"""REPL002 positive: an applied-LSN store with no monotonicity proof."""


class Follower:
    def __init__(self):
        self.applied_lsn = 0

    def apply(self, frame):
        # A replayed or stale frame moves the log position backwards.
        self.applied_lsn = frame.lsn
