"""CT001 negative: branching on shape (len) of a secret is public."""


def unlock(session_key: bytes) -> bytes:
    if len(session_key) != 32:
        return b"reject"
    return b"accept"
