"""TIME001 positive: wall-clock reads outside sim/clock.py."""

import time
from datetime import datetime


def stamp() -> tuple:
    return time.time(), datetime.now()
