"""CT001 positive: early return conditioned on a secret byte."""


def unlock(session_key: bytes) -> bytes:
    if session_key[0] > 3:
        return b"fast path"
    return b"slow path"
