"""REPL002 negative: the LSN advance is guarded against replay."""


class Follower:
    def __init__(self):
        self.applied_lsn = 0

    def apply(self, frame):
        if frame.lsn != self.applied_lsn + 1:
            raise ValueError("gap or replayed frame")
        self.applied_lsn = frame.lsn
