"""BACK001 negative: all residue arithmetic stays behind REDC calls."""


def good_mix(ctx, a, b):
    am = ctx.to_mont(a)
    bm = ctx.to_mont(b)
    pm = ctx.mont_mul(am, bm)
    product = ctx.from_mont(pm)
    return product * 2 + b
