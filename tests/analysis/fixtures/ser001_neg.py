"""SER001 negative: symmetric to_bytes/from_bytes pair."""

from dataclasses import dataclass


@dataclass
class PairedFrame:
    payload: bytes

    def to_bytes(self) -> bytes:
        return self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "PairedFrame":
        return cls(payload=data)
