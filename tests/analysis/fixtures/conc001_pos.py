"""CONC001 positive: a worker task indexing a sibling's queue."""


class Pool:
    def __init__(self, scheduler, workers):
        self._scheduler = scheduler
        self._workers = workers
        self._queues = [[] for _ in range(workers)]
        self._inflight = {}

    def start(self):
        for index in range(self._workers):
            self._scheduler.spawn(f"worker-{index}", self._worker_loop(index))

    def _worker_loop(self, index):
        while True:
            queue = self._queues[(index + 1) % 3]  # a sibling's queue
            if queue:
                self._inflight[index] = queue.pop()
            yield
