"""TIME001 negative: sim clock for protocol time, perf_counter for benches."""

import time

from repro.sim.clock import SimClock


def stamp(clock: SimClock) -> tuple:
    return clock.now_us(), time.perf_counter()
