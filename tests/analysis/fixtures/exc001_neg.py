"""EXC001 negative: narrow excepts; broad catch allowed when re-raising."""

from repro.errors import DecodeError


def parse(payload: bytes):
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(str(exc)) from exc


def boundary(payload: bytes):
    try:
        return payload.decode("utf-8")
    except Exception:
        raise
