"""EXC001 positive: bare/overbroad excepts swallowing errors."""


def parse(payload: bytes):
    try:
        return payload.decode("utf-8")
    except:  # noqa: E722
        return None


def guard(payload: bytes):
    try:
        return payload.decode("utf-8")
    except Exception:
        return None
