"""OBS001 negative: catalogued exact name plus a catalogued prefix family."""

from repro.obs import MetricsRegistry


def build(registry: MetricsRegistry, device_id: str):
    accepted = registry.counter("mws.sda.accepted")
    per_device = registry.counter(f"client.sd.{device_id}.deposits")
    return accepted, per_device
