"""API001 positive: mutable default argument."""


def collect(item: int, bucket: list = []) -> list:
    bucket.append(item)
    return bucket
