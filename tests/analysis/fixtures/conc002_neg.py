"""CONC002 negative: the topology mutation checks the lease first."""


class Warehouse:
    def __init__(self):
        self._shards = []
        self._ring = None
        self._live_workers = 0

    def acquire_worker(self):
        self._live_workers += 1

    def release_worker(self):
        self._live_workers -= 1

    def rebalance(self, new_shards):
        if self._live_workers:
            raise RuntimeError("rebalance is offline-only under live leases")
        for shard in new_shards:
            self._shards.append(shard)
        self._ring = tuple(range(len(self._shards)))
