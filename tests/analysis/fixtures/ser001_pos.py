"""SER001 positive: wire dataclass with an encoder but no decoder."""

from dataclasses import dataclass


@dataclass
class LonelyFrame:
    payload: bytes

    def to_bytes(self) -> bytes:
        return self.payload
