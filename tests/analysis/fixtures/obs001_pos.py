"""OBS001 positive: metric name missing from the obs dump schema."""

from repro.obs import MetricsRegistry


def build(registry: MetricsRegistry):
    return registry.counter("mws.sda.definitely_not_in_schema")
