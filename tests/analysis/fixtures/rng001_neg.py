"""RNG001 negative: randomness flows through an injected RandomSource."""

from repro.mathlib.rand import RandomSource


def make_nonce(rng: RandomSource) -> bytes:
    return rng.randbytes(16)
