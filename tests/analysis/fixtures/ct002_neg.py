"""CT002 negative: the sanctioned constant-time comparison."""

from repro.core.conventions import compute_deposit_mac
from repro.hashes.hmac import constant_time_equal


def check(message: bytes, device_key: bytes, presented: bytes) -> bool:
    expected = compute_deposit_mac(device_key, message)
    return constant_time_equal(expected, presented)
