"""CONC002 positive: ring swap + shard growth without the interlock."""


class Warehouse:
    def __init__(self):
        self._shards = []
        self._ring = None
        self._live_workers = 0

    def acquire_worker(self):
        self._live_workers += 1

    def release_worker(self):
        self._live_workers -= 1

    def rebalance(self, new_shards):
        for shard in new_shards:
            self._shards.append(shard)
        self._ring = tuple(range(len(self._shards)))
