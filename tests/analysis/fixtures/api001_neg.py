"""API001 negative: None default with in-body construction."""


def collect(item: int, bucket: list | None = None) -> list:
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
