"""REPL001 negative: every member mutation rides a WAL append."""


class ReplicaGroup:
    def __init__(self, wal, members):
        self._wal = wal
        self._members = members

    def write(self, payload):
        frame = self._wal.append(payload)
        for member in self._members:
            member.enqueue(frame)

    def delete(self, message_id):
        self._wal.append(("delete", message_id))
        for member in self._members:
            member.db.delete(message_id)
