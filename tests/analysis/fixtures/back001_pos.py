"""BACK001 positive: schoolbook arithmetic on Montgomery residues."""


def bad_mix(ctx, a, b):
    am = ctx.to_mont(a)
    bm = ctx.to_mont(b)
    product = am * bm  # wrong by a factor of R: needs mont_mul (REDC)
    return product + b  # and this mixes domains outright
