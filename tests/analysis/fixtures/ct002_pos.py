"""CT002 positive: raw == on a MAC computed from key material."""

from repro.core.conventions import compute_deposit_mac


def check(message: bytes, device_key: bytes, presented: bytes) -> bool:
    expected = compute_deposit_mac(device_key, message)
    return expected == presented
