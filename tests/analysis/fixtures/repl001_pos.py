"""REPL001 positive: a member database mutated behind the WAL's back."""


class ReplicaGroup:
    def __init__(self, wal, members):
        self._wal = wal
        self._members = members

    def write(self, payload):
        frame = self._wal.append(payload)
        for member in self._members:
            member.enqueue(frame)

    def backdoor_delete(self, message_id):
        # Never appended to the WAL: followers and recovery diverge.
        self._members[0].db.delete(message_id)
