"""API002 positive: __all__ drift in both directions."""

__all__ = ["exported", "ghost_name"]


def exported() -> int:
    return 1


def forgotten() -> int:
    return 2
