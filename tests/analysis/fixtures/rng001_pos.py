"""RNG001 positive: ambient randomness instead of the RandomSource funnel."""

import os
import random


def make_nonce() -> bytes:
    if random.random() < 0.5:
        return os.urandom(16)
    return os.urandom(8)
