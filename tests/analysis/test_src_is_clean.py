"""Meta-test: the analyzer over the real ``src/`` tree stays clean.

This is the tier-1 mirror of the CI lint job: the shipped baseline is
*empty*, so any new CT/RNG/TIME/SER/OBS/EXC/API finding in production
code fails the ordinary test run, not just CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths, load_baseline, split_findings

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_has_no_non_baselined_findings():
    report = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert report.files_scanned > 50, "lint walked suspiciously few files"
    assert not report.parse_errors

    baseline_path = REPO_ROOT / "lint_baseline.json"
    keys = (
        load_baseline(baseline_path.read_text(encoding="utf-8"))
        if baseline_path.exists()
        else set()
    )
    new, _ = split_findings(report.sorted_findings(), keys)
    assert not new, "new lint findings:\n" + "\n".join(f.render() for f in new)


def test_shipped_baseline_is_empty():
    baseline_path = REPO_ROOT / "lint_baseline.json"
    assert baseline_path.exists()
    assert load_baseline(baseline_path.read_text(encoding="utf-8")) == set()


def test_suppressions_in_src_are_rare_and_intentional():
    # Every inline disable is a reviewed exemption; if this number grows,
    # the exemption list in docs/ANALYSIS.md must grow with it.
    report = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    suppressed_ids = sorted({f.rule_id for f in report.suppressed})
    assert len(report.suppressed) <= 3, suppressed_ids
