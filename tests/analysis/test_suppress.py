"""Inline suppression and nonsecret-annotation behaviour."""

from __future__ import annotations

from repro.analysis import analyze_source
from repro.analysis.suppress import parse_annotations

MWS_PATH = "src/repro/mws/fixture.py"


def test_disable_comment_suppresses_on_its_line():
    source = (
        "import random  # repro-lint: disable=RNG001\n"
    )
    report = analyze_source(source, MWS_PATH)
    assert not [f for f in report.findings if f.rule_id == "RNG001"]
    assert [f.rule_id for f in report.suppressed] == ["RNG001"]


def test_disable_comment_is_rule_specific():
    # Disabling TIME001 does not silence the RNG001 finding on the line.
    source = "import random  # repro-lint: disable=TIME001\n"
    report = analyze_source(source, MWS_PATH)
    assert [f.rule_id for f in report.findings] == ["RNG001"]


def test_disable_comment_accepts_multiple_rules():
    source = "import random  # repro-lint: disable=TIME001,RNG001\n"
    report = analyze_source(source, MWS_PATH)
    assert not report.findings
    assert [f.rule_id for f in report.suppressed] == ["RNG001"]


def test_nonsecret_annotation_clears_mac_shaped_name():
    body = (
        "def dispatch(payload: bytes) -> bool:\n"
        "    tag = payload[0]\n"
        "    return tag == 1\n"
    )
    flagged = analyze_source(body, MWS_PATH)
    assert "CT002" in {f.rule_id for f in flagged.findings}

    annotated = "# repro-lint: nonsecret=tag\n" + body
    cleared = analyze_source(annotated, MWS_PATH)
    assert "CT002" not in {f.rule_id for f in cleared.findings}


def test_parse_annotations_shapes():
    source = (
        "# repro-lint: nonsecret=tag, mac\n"
        "x = 1  # repro-lint: disable=CT001, CT002\n"
    )
    annotations = parse_annotations(source)
    assert annotations.is_disabled("CT001", 2)
    assert annotations.is_disabled("CT002", 2)
    assert not annotations.is_disabled("CT001", 1)
    assert set(annotations.nonsecret) == {"tag", "mac"}
