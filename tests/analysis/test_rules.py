"""Per-rule fixture tests: every rule ID fires on its positive fixture
and stays quiet on its negative one.

Fixtures live in ``tests/analysis/fixtures/`` as real parseable modules;
the *display path* each one is analyzed under is part of the fixture
(several rules are path-scoped: EXC001 only polices ``mws``/``pkg``/
``clients``, RNG001 exempts ``mathlib/rand.py``, ...).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_source, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (fixture stem, display path the source is analyzed under)
CASES = {
    "CT001": ("ct001", "src/repro/ibe/fixture.py"),
    "CT002": ("ct002", "src/repro/mws/fixture.py"),
    "RNG001": ("rng001", "src/repro/mws/fixture.py"),
    "TIME001": ("time001", "src/repro/mws/fixture.py"),
    "SER001": ("ser001", "src/repro/wire/fixture.py"),
    "OBS001": ("obs001", "src/repro/obs/fixture.py"),
    "EXC001": ("exc001", "src/repro/mws/fixture.py"),
    "API001": ("api001", "src/repro/core/fixture.py"),
    "API002": ("api002", "src/repro/core/fixture.py"),
    "CONC001": ("conc001", "src/repro/mws/fixture.py"),
    "CONC002": ("conc002", "src/repro/storage/fixture.py"),
    "REPL001": ("repl001", "src/repro/storage/fixture.py"),
    "REPL002": ("repl002", "src/repro/storage/fixture.py"),
    "BACK001": ("back001", "src/repro/pairing/fixture.py"),
}


def run_fixture(stem: str, flavour: str, display_path: str):
    source = (FIXTURES / f"{stem}_{flavour}.py").read_text(encoding="utf-8")
    return analyze_source(source, display_path)


def ids_of(report) -> set:
    return {finding.rule_id for finding in report.findings}


def test_every_rule_has_a_case():
    assert set(CASES) == set(rule_ids())


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_positive_fixture_fires(rule_id):
    stem, display_path = CASES[rule_id]
    report = run_fixture(stem, "pos", display_path)
    assert rule_id in ids_of(report)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_negative_fixture_is_clean(rule_id):
    stem, display_path = CASES[rule_id]
    report = run_fixture(stem, "neg", display_path)
    assert rule_id not in ids_of(report)


def test_findings_carry_location_and_render(tmp_path):
    report = run_fixture("rng001", "pos", "src/repro/mws/fixture.py")
    rng = [f for f in report.findings if f.rule_id == "RNG001"]
    assert rng, "RNG001 fixture must produce findings"
    rendered = rng[0].render()
    assert "src/repro/mws/fixture.py" in rendered
    assert "RNG001" in rendered
    assert rng[0].line >= 1


def test_exc001_is_path_scoped():
    # The same overbroad except is tolerated outside mws/pkg/clients
    # (bench harnesses legitimately firewall arbitrary failures).
    source = (FIXTURES / "exc001_pos.py").read_text(encoding="utf-8")
    inside = analyze_source(source, "src/repro/mws/fixture.py")
    outside = analyze_source(source, "src/repro/bench/fixture.py")
    assert "EXC001" in ids_of(inside)
    assert "EXC001" not in ids_of(outside)


def test_rng001_exempts_the_rand_funnel():
    source = "import random\n"
    inside = analyze_source(source, "src/repro/mws/fixture.py")
    funnel = analyze_source(source, "src/repro/mathlib/rand.py")
    assert "RNG001" in ids_of(inside)
    assert "RNG001" not in ids_of(funnel)


def test_time001_exempts_the_sim_clock():
    source = "import time\n\n\ndef now():\n    return time.time()\n"
    inside = analyze_source(source, "src/repro/mws/fixture.py")
    clock = analyze_source(source, "src/repro/sim/clock.py")
    assert "TIME001" in ids_of(inside)
    assert "TIME001" not in ids_of(clock)


def test_syntax_error_becomes_parse_finding():
    report = analyze_source("def broken(:\n", "src/repro/broken.py")
    assert report.parse_errors
    assert [f.rule_id for f in report.findings] == ["PARSE"]
