"""Property suite: message conservation under seeded schedules and faults.

The shard-parallel worker pool must never lose or duplicate a message,
no matter how the deterministic scheduler interleaves deposit workers
with the paging retrieval loop, and no matter how many workers the
fault plan crashes mid-job.  The SDA's idempotent replay cache makes
crash-requeue-resend safe (at-most-once storage), so any seeded
schedule plus any crash plan must satisfy the PR 5 conservation law:
every accepted id is retrieved exactly once and the per-shard counts
sum to the accepted total.

Determinism is part of the contract: re-running the same seeds must
reproduce the transcript fingerprint and the observability dump byte
for byte — that is what makes a failing schedule replayable.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.deployment import Deployment, DeploymentConfig
from repro.mathlib.rand import HmacDrbg
from repro.mws.runtime import ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec

ATTRIBUTES = ("ELECTRIC-P-SV", "WATER-P-SV")


def run_once(scheduler_seed, plan_seed, workers, crash, max_crashes):
    deployment = Deployment.build(
        DeploymentConfig(
            preset="TOY64",
            rsa_bits=768,
            seed=b"concurrent-conservation",
            mws=MwsConfig(message_shards=4),
        )
    )
    try:
        if crash:
            plan = FaultPlan(HmacDrbg(plan_seed), registry=deployment.registry)
            plan.set_worker_faults(
                WorkerFaultSpec(crash=crash, max_crashes=max_crashes)
            )
            deployment.network.install_fault_plan(plan)
        jobs = [
            (
                f"cc-dev-{index}",
                [
                    (
                        ATTRIBUTES[seq % len(ATTRIBUTES)],
                        f"device=cc-{index};seq={seq}".encode("ascii"),
                    )
                    for seq in range(4)
                ],
            )
            for index in range(3)
        ]
        pool = ShardWorkerPool(
            deployment, workers=workers, scheduler_seed=scheduler_seed
        )
        result = pool.run(jobs)
        return result, deployment.obs_dump_json()
    finally:
        deployment.close()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler_seed=st.binary(min_size=1, max_size=8),
    plan_seed=st.binary(min_size=1, max_size=8),
    workers=st.integers(min_value=1, max_value=4),
    crash=st.sampled_from([0.0, 0.2, 0.6, 1.0]),
    max_crashes=st.integers(min_value=1, max_value=3),
)
def test_any_schedule_and_fault_plan_conserves_messages(
    scheduler_seed, plan_seed, workers, crash, max_crashes
):
    result, _dump = run_once(
        scheduler_seed, plan_seed, workers, crash, max_crashes
    )
    assert result.conservation_ok(), (
        f"lost={sorted(result.lost_ids)} dup={sorted(result.duplicate_ids)} "
        f"crashes={result.crashes}"
    )
    assert len(result.accepted_ids) == 12
    assert result.restarts == result.crashes


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scheduler_seed=st.binary(min_size=1, max_size=8),
    workers=st.integers(min_value=1, max_value=3),
    crash=st.sampled_from([0.0, 0.5]),
)
def test_same_seed_reproduces_fingerprint_and_obs_dump(
    scheduler_seed, workers, crash
):
    first, dump_a = run_once(scheduler_seed, b"replay-plan", workers, crash, 2)
    second, dump_b = run_once(scheduler_seed, b"replay-plan", workers, crash, 2)
    assert first.fingerprint() == second.fingerprint()
    assert dump_a == dump_b
    assert first.conservation_ok()
