"""Tests for the shard-parallel MWS worker runtime (both lanes)."""

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import ProtocolError, StorageError
from repro.mathlib.rand import HmacDrbg
from repro.mws.runtime import ParallelDepositRunner, ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec

ATTRIBUTES = ("ELECTRIC-G-SV", "WATER-G-SV", "GAS-G-SV")


def build_deployment(seed=b"runtime-tests", shards=4, use_nonce=False):
    return Deployment.build(
        DeploymentConfig(
            preset="TOY64",
            rsa_bits=768,
            seed=seed,
            use_nonce=use_nonce,
            mws=MwsConfig(message_shards=shards),
        )
    )


def sample_jobs(messages_per_device=3, devices=3):
    jobs = []
    for index in range(devices):
        items = [
            (
                ATTRIBUTES[seq % len(ATTRIBUTES)],
                f"device=rt-{index:02d};seq={seq};reading".encode("ascii"),
            )
            for seq in range(messages_per_device)
        ]
        jobs.append((f"rt-dev-{index:02d}", items))
    return jobs


def run_pool(seed=b"sched-seed", crash=0.0, max_crashes=4, workers=3, jobs=None):
    deployment = build_deployment()
    try:
        if crash:
            plan = FaultPlan(HmacDrbg(b"plan-seed"), registry=deployment.registry)
            plan.set_worker_faults(
                WorkerFaultSpec(crash=crash, max_crashes=max_crashes)
            )
            deployment.network.install_fault_plan(plan)
        pool = ShardWorkerPool(deployment, workers=workers, scheduler_seed=seed)
        result = pool.run(jobs if jobs is not None else sample_jobs())
        dump = deployment.obs_dump_json()
        return result, dump
    finally:
        deployment.close()


class TestShardWorkerPool:
    def test_conservation_clean_run(self):
        result, _dump = run_pool()
        assert result.conservation_ok()
        assert len(result.accepted_ids) == 9
        assert result.rejected == 0
        assert result.crashes == 0

    def test_conservation_under_forced_crashes(self):
        result, _dump = run_pool(crash=1.0, max_crashes=2)
        assert result.crashes == 2
        assert result.restarts == 2
        assert result.conservation_ok()

    def test_same_seed_identical_fingerprint_and_dump(self):
        first, dump_a = run_pool(seed=b"fp-seed", crash=0.5)
        second, dump_b = run_pool(seed=b"fp-seed", crash=0.5)
        assert first.fingerprint() == second.fingerprint()
        assert dump_a == dump_b

    def test_different_scheduler_seed_changes_schedule_not_outcome(self):
        first, _ = run_pool(seed=b"seed-a")
        second, _ = run_pool(seed=b"seed-b")
        assert sorted(first.accepted_ids) == sorted(second.accepted_ids)
        assert first.conservation_ok() and second.conservation_ok()

    def test_worker_count_does_not_change_stored_payloads(self):
        def stored(workers):
            deployment = build_deployment()
            try:
                pool = ShardWorkerPool(
                    deployment, workers=workers, scheduler_seed=b"wc-seed"
                )
                pool.run(sample_jobs())
                db = deployment.mws.message_db
                return sorted(
                    (record.attribute, record.ciphertext)
                    for index in range(db.shard_count)
                    for record in db.shard(index).records()
                )
            finally:
                deployment.close()

        assert stored(1) == stored(4)

    def test_retrievals_interleave_with_deposits(self):
        result, _dump = run_pool(jobs=sample_jobs(messages_per_device=6))
        # Paging ran concurrently: more than one page, and the transcript
        # shows page fetches between deposit completions.
        assert result.pages >= 1
        steps = result.transcript
        first_page = next(i for i, e in enumerate(steps) if e.startswith("page:"))
        last_done = max(i for i, e in enumerate(steps) if e.startswith("done:"))
        assert first_page < last_done

    def test_rebalance_refused_while_pool_holds_lease(self):
        deployment = build_deployment()
        try:
            warehouse = deployment.mws.message_db
            with warehouse.worker_lease(2):
                with pytest.raises(StorageError, match="offline-only"):
                    warehouse.rebalance([None])
            # Lease released: rebalance works again.
            assert warehouse.rebalance([None]) >= 0
        finally:
            deployment.close()

    def test_rejects_zero_workers(self):
        deployment = build_deployment()
        try:
            with pytest.raises(ProtocolError, match=">= 1 worker"):
                ShardWorkerPool(deployment, workers=0)
        finally:
            deployment.close()

    def test_worker_metrics_exported(self):
        deployment = build_deployment()
        try:
            pool = ShardWorkerPool(deployment, workers=2, scheduler_seed=b"m-seed")
            result = pool.run(sample_jobs())
            snapshot = deployment.registry.snapshot()
            counters = snapshot["counters"]
            assert counters["runtime.jobs.completed"] >= 1
            worker_jobs = sum(
                value
                for name, value in counters.items()
                if name.startswith("runtime.worker.") and name.endswith(".jobs")
            )
            assert worker_jobs == counters["runtime.jobs.completed"]
            assert snapshot["gauges"]["runtime.steps"] == result.steps
        finally:
            deployment.close()


class TestParallelDepositRunner:
    def test_inline_and_process_lanes_produce_identical_bytes(self):
        def stored(lane, workers):
            deployment = build_deployment(seed=b"par-eq", use_nonce=True)
            try:
                runner = ParallelDepositRunner(
                    deployment, workers=workers, lane=lane, seed=b"par-eq-jobs"
                )
                stats = runner.run(sample_jobs(messages_per_device=2, devices=2))
                assert stats["accepted"] == 4
                db = deployment.mws.message_db
                return sorted(
                    (record.attribute, record.nonce, record.ciphertext)
                    for index in range(db.shard_count)
                    for record in db.shard(index).records()
                )
            finally:
                deployment.close()

        assert stored("inline", 1) == stored("process", 2)

    def test_parallel_deposits_decrypt_end_to_end(self):
        deployment = build_deployment(seed=b"par-dec", use_nonce=False)
        try:
            runner = ParallelDepositRunner(
                deployment, workers=2, lane="inline", seed=b"par-dec-jobs"
            )
            jobs = [("par-dec-dev", [("ELECTRIC-G-SV", b"reading=7.5kWh")])]
            stats = runner.run(jobs)
            assert stats["accepted"] == 1
            client = deployment.new_receiving_client(
                "par-dec-rc", "par-dec-pw", attributes=["ELECTRIC-G-SV"]
            )
            retrieved = client.retrieve_and_decrypt(
                deployment.rc_mws_channel(client.rc_id),
                deployment.rc_pkg_channel(client.rc_id),
            )
            assert [message.plaintext for message in retrieved] == [
                b"reading=7.5kWh"
            ]
        finally:
            deployment.close()

    def test_unknown_lane_rejected(self):
        deployment = build_deployment()
        try:
            with pytest.raises(ProtocolError, match="unknown parallel lane"):
                ParallelDepositRunner(deployment, lane="threads")
        finally:
            deployment.close()
