"""Lost-ack retransmits vs. true replays (ISSUE satellite: idempotency).

The paper's replay defence (§V.D) must not punish an honest device whose
acknowledgement was lost in transit: a byte-identical retransmit is served
the originally committed response, while a replay from any other identity
still fails closed with ``ReplayError``.
"""

import pytest

from tests.conftest import build_deployment
from repro.clients.transport import RetryPolicy
from repro.core.conventions import compute_deposit_mac
from repro.errors import ReplayError
from repro.mathlib.rand import HmacDrbg
from repro.mws.admin import MwsAdmin
from repro.mws.authenticator import SmartDeviceAuthenticator
from repro.sim.clock import SimClock
from repro.storage import DeviceKeyStore
from repro.wire.messages import DepositRequest, DepositResponse


def make_deposit(shared_key, clock, device_id="meter-1", **overrides):
    request = DepositRequest(
        device_id=device_id,
        attribute="A",
        nonce=b"\x07" * 16,
        ciphertext=b"\xcc" * 40,
        timestamp_us=overrides.pop("timestamp_us", clock.now_us()),
    )
    for field, value in overrides.items():
        setattr(request, field, value)
    request.mac = compute_deposit_mac(shared_key, request.mac_payload())
    return request


class TestAuthenticatorCache:
    @pytest.fixture()
    def world(self):
        clock = SimClock(tick_us=7)
        keystore = DeviceKeyStore(rng=HmacDrbg(b"ks"))
        shared_key = keystore.register("meter-1")
        sda = SmartDeviceAuthenticator(keystore, clock)
        return clock, keystore, shared_key, sda

    def test_retransmit_replays_recorded_response(self, world):
        clock, _ks, shared_key, sda = world
        request = make_deposit(shared_key, clock)
        assert sda.cached_response("meter-1", request.mac) is None
        sda.authenticate(request)
        sda.record_response(request.mac, b"ack-bytes")
        assert sda.cached_response("meter-1", request.mac) == b"ack-bytes"
        assert sda.stats["retransmits_replayed"] == 1
        assert sda.stats["replayed"] == 0

    def test_replay_from_other_device_fails_closed(self, world):
        clock, keystore, shared_key, sda = world
        keystore.register("meter-2")
        request = make_deposit(shared_key, clock)
        sda.authenticate(request)
        sda.record_response(request.mac, b"ack-bytes")
        with pytest.raises(ReplayError):
            sda.cached_response("meter-2", request.mac)
        assert sda.stats["replayed"] == 1
        assert sda.stats["retransmits_replayed"] == 0

    def test_replay_before_response_recorded_fails_closed(self, world):
        """A MAC committed but never acknowledged (store crashed mid-way)
        must not be replayable — there is no response to replay."""
        clock, _ks, shared_key, sda = world
        request = make_deposit(shared_key, clock)
        sda.authenticate(request)
        with pytest.raises(ReplayError):
            sda.cached_response("meter-1", request.mac)
        assert sda.stats["replayed"] == 1

    def test_stale_and_replayed_counted_separately(self, world):
        clock, _ks, shared_key, sda = world
        stale = make_deposit(
            shared_key, clock, timestamp_us=clock.now_us() - 600 * 1_000_000
        )
        with pytest.raises(ReplayError):
            sda.authenticate(stale)
        assert sda.stats["stale_timestamp"] == 1
        assert sda.stats["replayed"] == 0

    def test_eviction_closes_the_retransmit_window(self, world):
        clock, _ks, shared_key, sda = world
        sda._replay_cache_size = 2  # shrink for the test
        first = make_deposit(shared_key, clock)
        sda.authenticate(first)
        sda.record_response(first.mac, b"ack-1")
        for _ in range(2):  # push `first` out of the LRU cache
            request = make_deposit(shared_key, clock)
            sda.authenticate(request)
            sda.record_response(request.mac, b"ack")
        assert sda.cached_response("meter-1", first.mac) is None


class TestEndToEndRetransmit:
    def test_dropped_ack_recovered_with_original_message_id(self):
        """Deposit whose response is dropped; the client's retransmit must
        succeed idempotently — one stored message, the original id."""
        deployment = build_deployment(
            retry_policy=RetryPolicy(max_attempts=4, jitter=0.0)
        )
        device = deployment.new_smart_device("meter-1")
        dropped = []

        def drop_first_ack(destination, source, response):
            if destination == "mws-sd" and not dropped:
                dropped.append(response)
                return None
            return response

        deployment.network.add_response_interceptor(drop_first_ack)
        response = device.deposit(
            deployment.sd_channel("meter-1"), "A1", b"reading"
        )
        assert response.accepted
        assert len(dropped) == 1  # the fault really fired
        # The dropped ack and the replayed ack carry the same message id.
        original = DepositResponse.from_bytes(dropped[0])
        assert response.message_id == original.message_id
        assert len(deployment.mws.message_db) == 1
        assert deployment.mws.sda.stats["retransmits_replayed"] == 1
        assert device.transport.stats["recovered"] == 1
        deployment.close()

    def test_cross_device_replay_rejected_on_the_wire(self, deployment):
        """An attacker re-tagging a committed deposit with another device
        id must be rejected even though the MAC is in the cache."""
        device = deployment.new_smart_device("meter-1")
        deployment.new_smart_device("meter-2")
        request = device.build_deposit("A1", b"reading")
        first = DepositResponse.from_bytes(
            deployment.network.send("meter-1", "mws-sd", request.to_bytes())
        )
        assert first.accepted
        forged = DepositRequest.from_bytes(request.to_bytes())
        forged.device_id = "meter-2"
        second = DepositResponse.from_bytes(
            deployment.network.send("meter-2", "mws-sd", forged.to_bytes())
        )
        assert not second.accepted
        assert "replayed" in second.error
        assert len(deployment.mws.message_db) == 1
        assert deployment.mws.sda.stats["replayed"] == 1

    def test_admin_status_reports_split_counters(self, deployment):
        device = deployment.new_smart_device("meter-1")
        request = device.build_deposit("A1", b"reading")
        deployment.network.send("meter-1", "mws-sd", request.to_bytes())
        deployment.network.send("meter-1", "mws-sd", request.to_bytes())
        status = MwsAdmin(deployment.mws).status()
        assert status.deposits_accepted == 1
        assert status.retransmits_served == 1
        assert status.deposits_replayed == 0
        assert status.deposits_stale == 0
        # Retransmits are served, not rejected.
        assert status.deposits_rejected == 0
