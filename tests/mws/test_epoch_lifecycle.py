"""Epoch lifecycle end to end: admission windows, lazy re-wrap, churn.

Satellite coverage for the key-lifecycle tentpole — the edge cases the
revocation bench drives statistically, pinned here deterministically:
a deposit accepted in epoch N retrieved in N+1, revocation landing
mid-batch with per-item status codes, and epoch rolls racing a leader
failover and an online rebalance.
"""

import pytest

from repro.core.conventions import compute_deposit_mac
from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import RevokedError, TicketError
from repro.ibe.reencrypt import is_wrapped
from repro.mathlib.rand import HmacDrbg
from repro.mws.runtime import ShardWorkerPool
from repro.mws.service import MwsConfig
from repro.sim.faults import FaultPlan, WorkerFaultSpec
from repro.wire.messages import BATCH_ITEM_EPOCH_REJECTED, BatchDepositReceipt

ATTRIBUTE = "ELECTRIC-EP-SV"
OTHER = "WATER-EP-SV"


def build_deployment(seed=b"epoch-lifecycle", **mws_kwargs):
    return Deployment.build(
        DeploymentConfig(
            preset="TOY64",
            rsa_bits=768,
            seed=seed,
            mws=MwsConfig(**mws_kwargs),
        )
    )


def retrieve(deployment, client):
    return client.retrieve_and_decrypt(
        deployment.rc_mws_channel(client.rc_id),
        deployment.rc_pkg_channel(client.rc_id),
    )


class TestCrossEpochRetrieval:
    def test_deposit_in_epoch_n_retrieved_in_n_plus_1(self):
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            client = deployment.new_receiving_client(
                "ep-rc", "pw", attributes=[ATTRIBUTE]
            )
            message_id = device.deposit(
                deployment.sd_channel("ep-meter"), ATTRIBUTE, b"pre-roll reading"
            ).message_id
            assert deployment.roll_epoch() == 1

            # Retrieval after the roll serves — and persists — the
            # re-wrapped copy; the RC peels the wrap with the epoch-1
            # key and decrypts the epoch-0 base underneath.
            messages = retrieve(deployment, client)
            assert [m.plaintext for m in messages] == [b"pre-roll reading"]
            record = deployment.mws.message_db.fetch(message_id)
            assert record.epoch == 1
            assert is_wrapped(record.ciphertext)
            assert deployment.revocation.reencryptions.value == 1

            # A second retrieval serves the already-current copy: no
            # further re-wrap, same plaintext.
            again = retrieve(deployment, client)
            assert [m.plaintext for m in again] == [b"pre-roll reading"]
            assert deployment.revocation.reencryptions.value == 1
        finally:
            deployment.close()

    def test_background_drain_converges_storage(self):
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            client = deployment.new_receiving_client(
                "ep-rc", "pw", attributes=[ATTRIBUTE, OTHER]
            )
            device.deposit_many(
                deployment.sd_many_channel("ep-meter"),
                [(ATTRIBUTE, b"r0"), (OTHER, b"r1"), (ATTRIBUTE, b"r2")],
            )
            deployment.roll_epoch()
            moved = deployment.reencryptor.drain()
            assert moved == 3
            assert all(
                record.epoch == 1 and is_wrapped(record.ciphertext)
                for record in deployment.mws.message_db.records()
            )
            assert deployment.reencryptor.drain() == 0  # idempotent
            plaintexts = {m.plaintext for m in retrieve(deployment, client)}
            assert plaintexts == {b"r0", b"r1", b"r2"}
        finally:
            deployment.close()


class TestAdmissionWindow:
    def test_request_built_before_roll_is_still_accepted(self):
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            stale = device.build_many([(ATTRIBUTE, b"in-flight")]).to_bytes()
            deployment.roll_epoch()
            receipt = BatchDepositReceipt.from_bytes(
                deployment.sd_many_channel("ep-meter").request(stale)
            )
            assert receipt.accepted_count == 1
            # Stored at its deposit-time epoch, not silently restamped.
            record = deployment.mws.message_db.fetch(receipt.message_ids()[0])
            assert record.epoch == 0
        finally:
            deployment.close()

    def test_retired_epoch_rejected_per_item(self):
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            stale = device.build_many(
                [(ATTRIBUTE, b"too-old-1"), (OTHER, b"too-old-2")]
            ).to_bytes()
            deployment.roll_epoch()
            deployment.revocation.retire_before(1)

            receipt = BatchDepositReceipt.from_bytes(
                deployment.sd_many_channel("ep-meter").request(stale)
            )
            # The envelope is honest, so rejection is per-item: every
            # entry carries the retired-epoch status, nothing commits.
            assert not receipt.error
            assert receipt.accepted_count == 0
            assert [s.status for s in receipt.statuses] == [
                BATCH_ITEM_EPOCH_REJECTED,
                BATCH_ITEM_EPOCH_REJECTED,
            ]
            assert len(deployment.mws.message_db) == 0
            assert deployment.revocation.deposits_rejected.value == 2

            # A fresh build stamps the current epoch and sails through.
            fresh = device.build_many([(ATTRIBUTE, b"current")]).to_bytes()
            fresh_receipt = BatchDepositReceipt.from_bytes(
                deployment.sd_many_channel("ep-meter").request(fresh)
            )
            assert fresh_receipt.accepted_count == 1
        finally:
            deployment.close()

    def test_future_epoch_stamp_rejected(self):
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            request = device.build_many([(ATTRIBUTE, b"from-the-future")])
            request.entries[0].epoch = 7  # beyond the warehouse's epoch
            request.mac = compute_deposit_mac(
                deployment.mws.device_keys.shared_key("ep-meter"),
                request.mac_payload(),
            )
            receipt = BatchDepositReceipt.from_bytes(
                deployment.sd_many_channel("ep-meter").request(request.to_bytes())
            )
            assert receipt.statuses[0].status == BATCH_ITEM_EPOCH_REJECTED
            assert len(deployment.mws.message_db) == 0
        finally:
            deployment.close()


class TestRevocationMidStream:
    def test_wholesale_revocation_blocks_retrieval(self):
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            client = deployment.new_receiving_client(
                "ep-victim", "pw", attributes=[ATTRIBUTE]
            )
            device.deposit(
                deployment.sd_channel("ep-meter"), ATTRIBUTE, b"reading"
            )
            assert len(retrieve(deployment, client)) == 1
            deployment.revoke_rc("ep-victim")
            with pytest.raises(RevokedError):
                client.retrieve(deployment.rc_mws_channel("ep-victim"))
        finally:
            deployment.close()

    def test_pkg_rechecks_revocation_on_inflight_ticket(self):
        """A ticket that raced the revocation cannot extract the key.

        The Token Generator stamps tickets with (epoch, policy version);
        even a ticket forged with the full pre-revocation attribute map
        at the *current* epoch is re-checked against the live revocation
        view at extraction time — the PKG is the second gate.
        """
        deployment = build_deployment()
        try:
            device = deployment.new_smart_device("ep-meter")
            client = deployment.new_receiving_client(
                "ep-victim", "pw", attributes=[ATTRIBUTE, OTHER]
            )
            message_id = device.deposit(
                deployment.sd_channel("ep-meter"), ATTRIBUTE, b"reading"
            ).message_id
            deployment.revoke_rc("ep-victim", attribute=ATTRIBUTE)
            current = deployment.revocation.current_epoch

            aid_map = deployment.mws.policy_db.attributes_for("ep-victim")
            revoked_aid = next(
                aid for aid, attr in aid_map.items() if attr == ATTRIBUTE
            )
            nonce = deployment.mws.message_db.fetch(message_id).nonce
            sealed = deployment.mws.token_generator.issue(
                "ep-victim",
                client._rsa.public,  # white-box: forge the race
                aid_map,
                epoch=current,
                policy_version=deployment.mws.policy_db.version,
            )
            token = client.open_token(sealed)
            session_id = client.authenticate_to_pkg(
                deployment.rc_pkg_channel("ep-victim"), token
            )
            denied_before = deployment.revocation.extract_denied.value
            with pytest.raises(TicketError, match="revoked"):
                client.fetch_key(
                    deployment.rc_pkg_channel("ep-victim"),
                    session_id,
                    token.session_key,
                    revoked_aid,
                    nonce,
                    epoch=current,
                )
            assert deployment.revocation.extract_denied.value == denied_before + 1
        finally:
            deployment.close()


class TestChurnUnderConcurrency:
    def jobs(self, count=3, per_device=4):
        return [
            (
                f"ep-dev-{index}",
                [
                    (
                        (ATTRIBUTE, OTHER)[seq % 2],
                        f"device=ep-{index};seq={seq};reading".encode("ascii"),
                    )
                    for seq in range(per_device)
                ],
            )
            for index in range(count)
        ]

    def run_pool(self, deployment, spec_kwargs=None, **pool_kwargs):
        if spec_kwargs:
            plan = FaultPlan(
                HmacDrbg(b"epoch-churn-plan"), registry=deployment.registry
            )
            plan.set_worker_faults(WorkerFaultSpec(**spec_kwargs))
            deployment.network.install_fault_plan(plan)
        pool = ShardWorkerPool(
            deployment,
            workers=2,
            scheduler_seed=b"epoch-churn",
            revocation_schedule=[(1, None, None), (3, None, None)],
            reencrypt_every=3,
            reencrypt_batch=4,
            **pool_kwargs,
        )
        return pool.run(self.jobs())

    def test_epoch_roll_concurrent_with_leader_failover(self):
        deployment = build_deployment(
            message_shards=2, message_replicas=2, replication_quorum=2
        )
        try:
            result = self.run_pool(
                deployment,
                spec_kwargs={"leader_kill": 0.9, "max_leader_kills": 2},
                failover_every=2,
            )
            assert result.failovers >= 1
            assert result.epoch_rolls == 2
            assert result.conservation_ok()
            assert deployment.revocation.current_epoch == 2
        finally:
            deployment.close()

    def test_epoch_roll_concurrent_with_online_rebalance(self):
        deployment = build_deployment(message_shards=2)
        try:
            result = self.run_pool(
                deployment,
                rebalance_stores=[None, None],
                rebalance_after=1,
            )
            assert result.rebalance_moves > 0
            assert result.epoch_rolls == 2
            assert result.conservation_ok()
            # The background drain kept converging storage while records
            # were moving between shards.
            assert result.reencrypt_moves > 0
        finally:
            deployment.close()
