"""Unit tests for each Fig. 3 MWS component in isolation."""

import pytest

from repro.core.conventions import compute_deposit_mac, derive_password_key
from repro.errors import (
    AccessDeniedError,
    AuthenticationError,
    MacMismatchError,
    ReplayError,
    UnknownIdentityError,
)
from repro.mathlib.rand import HmacDrbg
from repro.mws.authenticator import SmartDeviceAuthenticator
from repro.mws.gatekeeper import Gatekeeper
from repro.mws.mms import MessageManagementSystem
from repro.mws.token_gen import TokenGenerator
from repro.pki.rsa import generate_rsa_keypair, hybrid_open
from repro.policy import PolicyEngine, parse_policy
from repro.sim.clock import SimClock
from repro.storage import DeviceKeyStore, MessageDatabase, PolicyDatabase, UserDatabase
from repro.symciph.cipher import SymmetricScheme
from repro.wire.messages import DepositRequest, RetrieveRequest, Ticket, Token


def make_deposit(shared_key, clock, device_id="meter-1", attribute="A", **overrides):
    request = DepositRequest(
        device_id=device_id,
        attribute=attribute,
        nonce=b"\x07" * 16,
        ciphertext=b"\xcc" * 40,
        timestamp_us=overrides.pop("timestamp_us", clock.now_us()),
    )
    for field, value in overrides.items():
        setattr(request, field, value)
    request.mac = compute_deposit_mac(shared_key, request.mac_payload())
    return request


class TestSmartDeviceAuthenticator:
    @pytest.fixture()
    def world(self):
        clock = SimClock(tick_us=7)
        keystore = DeviceKeyStore(rng=HmacDrbg(b"ks"))
        shared_key = keystore.register("meter-1")
        alerts = []
        sda = SmartDeviceAuthenticator(
            keystore, clock, alert_sink=lambda device, reason: alerts.append(reason)
        )
        return clock, keystore, shared_key, sda, alerts

    def test_accepts_valid_deposit(self, world):
        clock, _ks, shared_key, sda, _alerts = world
        sda.authenticate(make_deposit(shared_key, clock))
        assert sda.stats["accepted"] == 1

    def test_rejects_bad_mac(self, world):
        clock, _ks, shared_key, sda, alerts = world
        request = make_deposit(shared_key, clock)
        request.mac = bytes(32)
        with pytest.raises(MacMismatchError):
            sda.authenticate(request)
        assert "MAC mismatch" in alerts

    def test_rejects_tampered_ciphertext(self, world):
        clock, _ks, shared_key, sda, _alerts = world
        request = make_deposit(shared_key, clock)
        request.ciphertext = b"\xcd" + request.ciphertext[1:]
        with pytest.raises(MacMismatchError):
            sda.authenticate(request)

    def test_rejects_unknown_device(self, world):
        clock, _ks, shared_key, sda, alerts = world
        request = make_deposit(shared_key, clock, device_id="ghost")
        with pytest.raises(UnknownIdentityError):
            sda.authenticate(request)
        assert "unknown device" in alerts
        assert sda.stats["unknown_device"] == 1

    def test_rejects_stale_timestamp(self, world):
        clock, _ks, shared_key, sda, _alerts = world
        request = make_deposit(shared_key, clock)
        clock.advance(600 * 1_000_000)  # beyond the 300s window
        with pytest.raises(ReplayError):
            sda.authenticate(request)

    def test_rejects_future_timestamp(self, world):
        clock, _ks, shared_key, sda, _alerts = world
        request = make_deposit(
            shared_key, clock, timestamp_us=clock.now_us() + 600 * 1_000_000
        )
        with pytest.raises(ReplayError):
            sda.authenticate(request)

    def test_rejects_replayed_deposit(self, world):
        clock, _ks, shared_key, sda, _alerts = world
        request = make_deposit(shared_key, clock)
        sda.authenticate(request)
        with pytest.raises(ReplayError):
            sda.authenticate(request)
        assert sda.stats["replayed"] == 1

    def test_revoked_device_rejected(self, world):
        clock, keystore, shared_key, sda, _alerts = world
        request = make_deposit(shared_key, clock)
        keystore.revoke("meter-1")
        with pytest.raises(UnknownIdentityError):
            sda.authenticate(request)


class TestGatekeeper:
    @pytest.fixture()
    def world(self):
        clock = SimClock(tick_us=7)
        user_db = UserDatabase()
        user_db.register("c-services", "hunter2")
        gatekeeper = Gatekeeper(user_db, clock, cipher_name="DES")
        return clock, user_db, gatekeeper

    def _request(self, clock, rc_id="c-services", password="hunter2", nonce=b"n" * 16):
        key = derive_password_key(UserDatabase.hash_password(password), "DES")
        scheme = SymmetricScheme("DES", key, mac=True, rng=HmacDrbg(nonce))
        payload = RetrieveRequest.auth_payload(rc_id, clock.now_us(), nonce)
        return RetrieveRequest(
            rc_id=rc_id, rc_public_key=b"\x01" * 16, auth_blob=scheme.seal(payload)
        )

    def test_valid_auth_returns_nonce(self, world):
        clock, _db, gatekeeper = world
        assert gatekeeper.authenticate(self._request(clock)) == b"n" * 16

    def test_wrong_password_rejected(self, world):
        clock, _db, gatekeeper = world
        with pytest.raises(AuthenticationError):
            gatekeeper.authenticate(self._request(clock, password="wrong"))
        assert gatekeeper.stats["rejected"] == 1

    def test_unknown_identity_rejected(self, world):
        clock, _db, gatekeeper = world
        with pytest.raises(UnknownIdentityError):
            gatekeeper.authenticate(self._request(clock, rc_id="ghost"))

    def test_inner_outer_id_mismatch_rejected(self, world):
        clock, _db, gatekeeper = world
        request = self._request(clock)
        # Mallory intercepts and replaces the outer id with her own...
        # but she'd need the blob decryptable under *her* hash. Simulate
        # the simpler attack: tamper with the outer id only.
        request.rc_id = "mallory"
        with pytest.raises((AuthenticationError, UnknownIdentityError)):
            gatekeeper.authenticate(request)

    def test_id_substitution_with_shared_password(self, world):
        """Two RCs with the same password: the inner/outer check must
        still prevent presenting alice's blob as bob."""
        clock, user_db, gatekeeper = world
        user_db.register("other-rc", "hunter2")
        request = self._request(clock)  # built for c-services
        request.rc_id = "other-rc"  # same password hash, so blob opens
        with pytest.raises(AuthenticationError):
            gatekeeper.authenticate(request)

    def test_stale_timestamp_rejected(self, world):
        clock, _db, gatekeeper = world
        request = self._request(clock)
        clock.advance(601 * 1_000_000)
        with pytest.raises(ReplayError):
            gatekeeper.authenticate(request)

    def test_nonce_replay_rejected(self, world):
        clock, _db, gatekeeper = world
        gatekeeper.authenticate(self._request(clock, nonce=b"x" * 16))
        with pytest.raises(ReplayError):
            gatekeeper.authenticate(self._request(clock, nonce=b"x" * 16))

    def test_distinct_nonces_accepted(self, world):
        clock, _db, gatekeeper = world
        gatekeeper.authenticate(self._request(clock, nonce=b"a" * 16))
        gatekeeper.authenticate(self._request(clock, nonce=b"b" * 16))
        assert gatekeeper.stats["authenticated"] == 2


class TestMms:
    @pytest.fixture()
    def world(self):
        message_db = MessageDatabase()
        policy_db = PolicyDatabase()
        mms = MessageManagementSystem(message_db, policy_db)
        return message_db, policy_db, mms

    def test_attribute_rewrite_to_aid(self, world):
        message_db, policy_db, mms = world
        aid = policy_db.grant("rc", "ELECTRIC-X")
        message_db.store("dev", "ELECTRIC-X", b"n", b"ct", 100)
        attribute_map, messages = mms.retrieve_for("rc", now_us=200)
        assert attribute_map == {aid: "ELECTRIC-X"}
        assert messages[0].attribute_id == aid
        # Attribute string must not appear anywhere in the RC-bound bytes.
        assert b"ELECTRIC-X" not in messages[0].to_bytes()

    def test_only_granted_attributes_served(self, world):
        message_db, policy_db, mms = world
        policy_db.grant("rc", "A")
        message_db.store("dev", "A", b"", b"1", 10)
        message_db.store("dev", "B", b"", b"2", 20)
        _map, messages = mms.retrieve_for("rc", now_us=100)
        assert [m.message_id for m in messages] == [1]

    def test_since_filter(self, world):
        message_db, policy_db, mms = world
        policy_db.grant("rc", "A")
        message_db.store("dev", "A", b"", b"1", 10)
        message_db.store("dev", "A", b"", b"2", 500)
        _map, messages = mms.retrieve_for("rc", now_us=1000, since_us=100)
        assert [m.message_id for m in messages] == [2]

    def test_unknown_identity_propagates(self, world):
        _md, _pd, mms = world
        with pytest.raises(UnknownIdentityError):
            mms.retrieve_for("ghost", now_us=0)

    def test_policy_engine_filters(self, world):
        message_db, policy_db, _ = world
        engine = PolicyEngine(parse_policy("permit attribute=ELECTRIC-*"))
        mms = MessageManagementSystem(message_db, policy_db, policy_engine=engine)
        policy_db.grant("rc", "ELECTRIC-1")
        policy_db.grant("rc", "WATER-1")
        message_db.store("dev", "ELECTRIC-1", b"", b"e", 10)
        message_db.store("dev", "WATER-1", b"", b"w", 20)
        attribute_map, messages = mms.retrieve_for("rc", now_us=100)
        assert list(attribute_map.values()) == ["ELECTRIC-1"]
        assert len(messages) == 1
        assert mms.stats["policy_denials"] == 1

    def test_policy_engine_denying_everything_raises(self, world):
        message_db, policy_db, _ = world
        engine = PolicyEngine(parse_policy("deny attribute=*"))
        mms = MessageManagementSystem(message_db, policy_db, policy_engine=engine)
        policy_db.grant("rc", "A")
        with pytest.raises(AccessDeniedError):
            mms.retrieve_for("rc", now_us=0)


class TestTokenGenerator:
    @pytest.fixture()
    def world(self):
        clock = SimClock(tick_us=7)
        mws_pkg_key = HmacDrbg(b"shared").randbytes(32)
        generator = TokenGenerator(mws_pkg_key, clock, HmacDrbg(b"tg"))
        rc_keys = generate_rsa_keypair(768, rng=HmacDrbg(b"rc-rsa"))
        return clock, mws_pkg_key, generator, rc_keys

    def test_token_opens_with_rc_private_key(self, world):
        _clock, _key, generator, rc_keys = world
        sealed = generator.issue("rc", rc_keys.public, {1: "ELECTRIC"})
        token = Token.from_bytes(hybrid_open(rc_keys.private, sealed))
        assert len(token.session_key) == 32

    def test_ticket_opens_only_with_pkg_key(self, world):
        _clock, mws_pkg_key, generator, rc_keys = world
        sealed = generator.issue("rc", rc_keys.public, {1: "ELECTRIC", 4: "GAS"})
        token = Token.from_bytes(hybrid_open(rc_keys.private, sealed))
        ticket_scheme = SymmetricScheme("AES-256", mws_pkg_key, mac=True)
        ticket = Ticket.from_bytes(ticket_scheme.open(token.sealed_ticket))
        assert ticket.rc_id == "rc"
        assert ticket.attribute_map == {1: "ELECTRIC", 4: "GAS"}
        assert ticket.session_key == token.session_key

    def test_attribute_strings_hidden_from_rc_view(self, world):
        """Everything the RC can decrypt (the Token) must not contain the
        attribute string; only the sealed ticket does."""
        _clock, _key, generator, rc_keys = world
        sealed = generator.issue("rc", rc_keys.public, {1: "SECRET-ATTRIBUTE"})
        token = Token.from_bytes(hybrid_open(rc_keys.private, sealed))
        assert b"SECRET-ATTRIBUTE" not in token.session_key
        # The sealed ticket is AES-encrypted: the attribute must not be
        # recoverable as plaintext bytes.
        assert b"SECRET-ATTRIBUTE" not in token.sealed_ticket

    def test_fresh_session_key_per_token(self, world):
        _clock, _key, generator, rc_keys = world
        first = Token.from_bytes(
            hybrid_open(rc_keys.private, generator.issue("rc", rc_keys.public, {1: "A"}))
        )
        second = Token.from_bytes(
            hybrid_open(rc_keys.private, generator.issue("rc", rc_keys.public, {1: "A"}))
        )
        assert first.session_key != second.session_key

    def test_ticket_lifetime_from_config(self):
        clock = SimClock()
        generator = TokenGenerator(
            bytes(32), clock, HmacDrbg(b"tg"), ticket_lifetime_us=12345
        )
        rc_keys = generate_rsa_keypair(768, rng=HmacDrbg(b"rc-rsa"))
        sealed = generator.issue("rc", rc_keys.public, {1: "A"})
        token = Token.from_bytes(hybrid_open(rc_keys.private, sealed))
        ticket = Ticket.from_bytes(
            SymmetricScheme("AES-256", bytes(32), mac=True).open(token.sealed_ticket)
        )
        assert ticket.lifetime_us == 12345
