"""Administrative surface: status, alerts, retention."""

import pytest

from repro.errors import ProtocolError
from repro.mws.admin import MwsAdmin
from repro.mws.service import MwsConfig
from repro.storage.engine import LogStructuredStore
from tests.conftest import build_deployment


def deposit(deployment, device, attribute, message):
    return device.deposit(deployment.sd_channel(device.device_id), attribute, message)


class TestStatus:
    def test_counters_reflect_activity(self, deployment):
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        client = deployment.new_receiving_client("rc", "pw", attributes=["A", "B"])
        deposit(deployment, device, "A", b"m1")
        deposit(deployment, device, "B", b"m2")
        client.retrieve(deployment.rc_mws_channel("rc"))
        status = admin.status()
        assert status.messages_stored == 2
        assert status.attributes_in_use == 2
        assert status.devices_registered == 1
        assert status.clients_registered == 1
        assert status.grants == 2
        assert status.deposits_accepted == 2
        assert status.deposits_rejected == 0
        assert status.retrievals_served == 1
        assert status.tokens_issued == 1

    def test_rejections_counted(self, deployment):
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        deployment.mws.revoke_device("meter")
        with pytest.raises(ProtocolError):
            deposit(deployment, device, "A", b"m")
        status = admin.status()
        assert status.deposits_rejected == 1
        assert status.alerts == 1

    def test_as_rows(self, deployment):
        rows = MwsAdmin(deployment.mws).status().as_rows()
        assert ("messages_stored", 0) in rows

    def test_recent_alerts(self, deployment):
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        deployment.mws.revoke_device("meter")
        for _ in range(3):
            try:
                deposit(deployment, device, "A", b"m")
            except ProtocolError:
                pass
        assert len(admin.recent_alerts(limit=2)) == 2
        assert admin.recent_alerts()[0][0] == "meter"


class TestRetention:
    def test_purge_older_than(self, deployment):
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        deposit(deployment, device, "A", b"ancient")
        cutoff = deployment.clock.now_us()
        deposit(deployment, device, "A", b"fresh")
        assert admin.purge_messages_older_than(cutoff) == 1
        remaining = deployment.mws.message_db.by_attribute("A")
        assert [r.ciphertext != b"" for r in remaining] == [True]
        assert len(remaining) == 1

    def test_purge_attribute(self, deployment):
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        deposit(deployment, device, "KEEP", b"k")
        deposit(deployment, device, "DROP", b"d1")
        deposit(deployment, device, "DROP", b"d2")
        assert admin.purge_attribute("DROP") == 2
        assert deployment.mws.message_db.attributes() == ["KEEP"]

    def test_purge_does_not_touch_registrations(self, deployment):
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        deployment.new_receiving_client("rc", "pw", attributes=["A"])
        deposit(deployment, device, "A", b"m")
        admin.purge_messages_older_than(deployment.clock.now_us())
        status = admin.status()
        assert status.messages_stored == 0
        assert status.devices_registered == 1
        assert status.grants == 1

    def test_compact_stores_on_log_backend(self, tmp_path):
        deployment = build_deployment(
            mws=MwsConfig(
                message_store=LogStructuredStore(str(tmp_path / "m.log"))
            ),
            seed=b"tests-admin-compact",
        )
        admin = MwsAdmin(deployment.mws)
        device = deployment.new_smart_device("meter")
        for index in range(10):
            deposit(deployment, device, "A", b"x" * 50)
        admin.purge_messages_older_than(deployment.clock.now_us())
        store = deployment.mws.message_db._store
        before = store.file_bytes()
        admin.compact_stores()
        assert store.file_bytes() < before
        deployment.close()
