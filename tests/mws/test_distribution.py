"""Distribution points and the pull coordinator (§VIII future work)."""

import pytest

from repro.mws.distribution import DistributionCoordinator, DistributionPoint
from repro.wire.messages import DepositRequest


@pytest.fixture()
def distributed_world(deployment):
    """Central MWS + two edge points sharing the device key store."""
    north = DistributionPoint(
        "north", deployment.mws.device_keys, deployment.clock
    )
    south = DistributionPoint(
        "south", deployment.mws.device_keys, deployment.clock
    )
    coordinator = DistributionCoordinator(deployment.mws)
    coordinator.register_point(north)
    coordinator.register_point(south)
    device = deployment.new_smart_device("edge-meter")
    client = deployment.new_receiving_client("rc", "pw", attributes=["EDGE"])
    return deployment, north, south, coordinator, device, client


class TestDistributionPoint:
    def test_edge_accepts_and_buffers(self, distributed_world):
        _dep, north, _south, _coord, device, _client = distributed_world
        request = device.build_deposit("EDGE", b"edge reading")
        response = north.handle_deposit(request)
        assert response.accepted
        assert north.buffered == 1

    def test_edge_rejects_tampered(self, distributed_world):
        _dep, north, _south, _coord, device, _client = distributed_world
        request = device.build_deposit("EDGE", b"x")
        request.mac = bytes(32)
        response = north.handle_deposit(request)
        assert not response.accepted
        assert north.buffered == 0
        assert north.stats["rejected"] == 1

    def test_edge_rejects_unknown_device(self, distributed_world):
        deployment, north, _south, _coord, device, _client = distributed_world
        request = device.build_deposit("EDGE", b"x")
        deployment.mws.revoke_device("edge-meter")
        assert not north.handle_deposit(request).accepted

    def test_buffer_cap(self, deployment):
        point = DistributionPoint(
            "tiny", deployment.mws.device_keys, deployment.clock, max_buffer=2
        )
        device = deployment.new_smart_device("cap-meter")
        for _ in range(2):
            assert point.handle_deposit(device.build_deposit("A", b"x")).accepted
        overflow = point.handle_deposit(device.build_deposit("A", b"x"))
        assert not overflow.accepted and "buffer full" in overflow.error

    def test_byte_handler(self, distributed_world):
        _dep, north, _south, _coord, device, _client = distributed_world
        request = device.build_deposit("EDGE", b"bytes")
        raw = north.deposit_handler(request.to_bytes())
        from repro.wire.messages import DepositResponse

        assert DepositResponse.from_bytes(raw).accepted
        assert not DepositResponse.from_bytes(
            north.deposit_handler(b"garbage")
        ).accepted


class TestCoordinator:
    def test_pull_moves_messages_to_centre(self, distributed_world):
        deployment, north, south, coordinator, device, client = distributed_world
        north.handle_deposit(device.build_deposit("EDGE", b"from north"))
        south.handle_deposit(device.build_deposit("EDGE", b"from south"))
        assert len(deployment.mws.message_db) == 0
        assert coordinator.pull_all() == 2
        assert len(deployment.mws.message_db) == 2
        assert north.buffered == 0 and south.buffered == 0
        # The RC reads both through the normal protocol.
        messages = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("rc"), deployment.rc_pkg_channel("rc")
        )
        assert {m.plaintext for m in messages} == {b"from north", b"from south"}

    def test_redelivery_is_deduplicated(self, distributed_world):
        """At-least-once from the edge, exactly-once at the warehouse."""
        deployment, north, _south, coordinator, device, _client = distributed_world
        request = device.build_deposit("EDGE", b"once only")
        north.handle_deposit(request)
        batch = north.peek_batch(10)
        coordinator.pull("north")
        # Simulate a crashed acknowledgement: the same request re-enters
        # the buffer (as a retry would re-send it).
        north._buffer.extend(batch)
        coordinator.pull("north")
        assert len(deployment.mws.message_db) == 1
        assert coordinator.stats["duplicates"] == 1

    def test_batched_pull(self, distributed_world):
        deployment, north, _south, coordinator, device, _client = distributed_world
        for index in range(5):
            north.handle_deposit(device.build_deposit("EDGE", f"m{index}".encode()))
        assert coordinator.pull("north", batch_size=2) == 2
        assert north.buffered == 3
        assert coordinator.pull("north", batch_size=10) == 3
        assert len(deployment.mws.message_db) == 5

    def test_pull_preserves_edge_timestamps(self, distributed_world):
        deployment, north, _south, coordinator, device, _client = distributed_world
        request = device.build_deposit("EDGE", b"stamped")
        north.handle_deposit(request)
        accepted_at = north.peek_batch(1)[0].accepted_at_us
        coordinator.pull("north")
        record = deployment.mws.message_db.fetch(1)
        assert record.deposited_at_us == accepted_at

    def test_points_listing(self, distributed_world):
        _dep, _north, _south, coordinator, _device, _client = distributed_world
        assert coordinator.points == ["north", "south"]
