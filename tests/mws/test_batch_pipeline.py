"""The batched protocol pipeline: deposit_many / paged retrieval.

End-to-end behaviour of the per-item batch envelopes against a sharded
warehouse: partial acceptance, envelope-level rejection, idempotent
retransmits, cursor paging, interop with the unbatched wire format, and
same-seed determinism of the whole transcript.
"""

import pytest

from repro.core.deployment import Deployment, DeploymentConfig
from repro.errors import ProtocolError
from repro.ibe import hybrid_decrypt, hybrid_encrypt_many
from repro.ibe.kem import HybridCiphertext
from repro.mws.service import MwsConfig
from repro.wire.messages import (
    BATCH_ITEM_EMPTY_ATTRIBUTE,
    BATCH_ITEM_EMPTY_CIPHERTEXT,
    BATCH_ITEM_ENVELOPE_REJECTED,
    BatchDepositReceipt,
)

ATTRIBUTE = "ELECTRIC-GLENBROOK-SV-CA"
OTHER = "WATER-GLENBROOK-SV-CA"


def build_deployment(shards=4, use_nonce=True, seed=b"batch-pipeline"):
    return Deployment.build(
        DeploymentConfig(
            seed=seed,
            use_nonce=use_nonce,
            mws=MwsConfig(message_shards=shards),
        )
    )


@pytest.fixture
def deployment():
    dep = build_deployment()
    yield dep
    dep.close()


class TestDepositMany:
    def test_items_commit_with_shard_and_id(self, deployment):
        device = deployment.new_smart_device("meter-001")
        items = [(ATTRIBUTE, f"r{i}".encode()) for i in range(6)]
        items += [(OTHER, b"wet")]
        receipt = device.deposit_many(
            deployment.sd_many_channel("meter-001"), items
        )
        assert receipt.accepted
        assert receipt.accepted_count == 7
        assert receipt.message_ids() == list(range(1, 8))
        owner = deployment.mws.message_db.shard_for(ATTRIBUTE)
        assert all(s.shard == owner for s in receipt.statuses[:6])
        assert receipt.statuses[6].shard == deployment.mws.message_db.shard_for(
            OTHER
        )

    def test_conservation_across_shards(self, deployment):
        device = deployment.new_smart_device("meter-001")
        items = [(f"KIND{i % 5}-X-SV", f"r{i}".encode()) for i in range(20)]
        receipt = device.deposit_many(
            deployment.sd_many_channel("meter-001"), items
        )
        counts = deployment.mws.message_db.shard_counts()
        assert sum(counts) == receipt.accepted_count == 20

    def test_bad_items_fail_alone(self, deployment):
        device = deployment.new_smart_device("meter-001")
        raw_items = [(ATTRIBUTE, b"good-1"), ("", b"no-attr"), (ATTRIBUTE, b"good-2")]
        request = device.build_many(raw_items)
        request.entries[1].ciphertext = b"x"  # keep entry non-empty ciphertext
        # Rebuild with the doctored entry list so the MAC still matches.
        request.mac = b""
        from repro.core.conventions import compute_deposit_mac

        request.mac = compute_deposit_mac(
            deployment.mws.device_keys.shared_key("meter-001"), request.mac_payload()
        )
        receipt = BatchDepositReceipt.from_bytes(
            deployment.sd_many_channel("meter-001").request(request.to_bytes())
        )
        assert [s.status for s in receipt.statuses] == [
            0,
            BATCH_ITEM_EMPTY_ATTRIBUTE,
            0,
        ]
        assert receipt.accepted_count == 2
        assert len(deployment.mws.message_db) == 2
        assert (
            deployment.registry.counter_values()[
                "mws.deposits.batch_items_rejected"
            ]
            == 1
        )

    def test_empty_ciphertext_entry_rejected(self, deployment):
        device = deployment.new_smart_device("meter-001")
        request = device.build_many([(ATTRIBUTE, b"ok")])
        request.entries[0].ciphertext = b""
        from repro.core.conventions import compute_deposit_mac

        request.mac = compute_deposit_mac(
            deployment.mws.device_keys.shared_key("meter-001"), request.mac_payload()
        )
        receipt = BatchDepositReceipt.from_bytes(
            deployment.sd_many_channel("meter-001").request(request.to_bytes())
        )
        assert receipt.statuses[0].status == BATCH_ITEM_EMPTY_CIPHERTEXT
        assert len(deployment.mws.message_db) == 0

    def test_bad_envelope_rejects_every_item_stores_nothing(self, deployment):
        device = deployment.new_smart_device("meter-001")
        request = device.build_many([(ATTRIBUTE, b"a"), (ATTRIBUTE, b"b")])
        request.mac = bytes(32)  # forged envelope
        receipt = BatchDepositReceipt.from_bytes(
            deployment.sd_many_channel("meter-001").request(request.to_bytes())
        )
        assert not receipt.accepted
        assert receipt.error
        assert all(
            s.status == BATCH_ITEM_ENVELOPE_REJECTED for s in receipt.statuses
        )
        assert len(receipt.statuses) == 2
        assert len(deployment.mws.message_db) == 0

    def test_client_raises_on_envelope_rejection(self, deployment):
        device = deployment.new_smart_device("meter-001")
        device._shared_key = bytes(32)  # desync the key: every MAC fails
        with pytest.raises(ProtocolError):
            device.deposit_many(
                deployment.sd_many_channel("meter-001"), [(ATTRIBUTE, b"x")]
            )

    def test_retransmit_replays_committed_receipt(self, deployment):
        device = deployment.new_smart_device("meter-001")
        raw = device.build_many([(ATTRIBUTE, b"once")]).to_bytes()
        channel = deployment.sd_many_channel("meter-001")
        first = channel.request(raw)
        second = channel.request(raw)
        assert first == second
        assert len(deployment.mws.message_db) == 1

    def test_batch_size_histogram_observed(self, deployment):
        device = deployment.new_smart_device("meter-001")
        device.deposit_many(
            deployment.sd_many_channel("meter-001"),
            [(ATTRIBUTE, f"r{i}".encode()) for i in range(5)],
        )
        snapshot = deployment.registry.snapshot()["histograms"]
        assert snapshot["mws.deposits.batch_size"]["count"] == 1


class TestPagedRetrieval:
    def deposit(self, deployment, count):
        device = deployment.new_smart_device("meter-001")
        device.deposit_many(
            deployment.sd_many_channel("meter-001"),
            [(ATTRIBUTE, f"reading-{i}".encode()) for i in range(count)],
        )

    def test_pages_partition_the_backlog(self, deployment):
        self.deposit(deployment, 10)
        client = deployment.new_receiving_client(
            "alice", "pw", attributes=[ATTRIBUTE]
        )
        channel = deployment.rc_page_channel("alice")
        first = client.retrieve_page(channel, page_size=4)
        assert [m.message_id for m in first.messages] == [1, 2, 3, 4]
        assert first.has_more and first.next_cursor == 4
        second = client.retrieve_page(channel, page_size=4, cursor=4)
        assert [m.message_id for m in second.messages] == [5, 6, 7, 8]
        third = client.retrieve_page(channel, page_size=4, cursor=8)
        assert [m.message_id for m in third.messages] == [9, 10]
        assert not third.has_more and third.next_cursor == 10

    def test_retrieve_all_matches_single_shot(self, deployment):
        self.deposit(deployment, 9)
        client = deployment.new_receiving_client(
            "alice", "pw", attributes=[ATTRIBUTE]
        )
        single = client.retrieve(deployment.rc_mws_channel("alice"))
        _token, paged = client.retrieve_all(
            deployment.rc_page_channel("alice"), page_size=2
        )
        assert [m.to_bytes() for m in paged] == [
            m.to_bytes() for m in single.messages
        ]
        assert client.stats["pages_fetched"] == 5

    def test_page_token_opens_and_messages_decrypt(self, deployment):
        self.deposit(deployment, 3)
        client = deployment.new_receiving_client(
            "alice", "pw", attributes=[ATTRIBUTE]
        )
        token, messages = client.retrieve_all(
            deployment.rc_page_channel("alice"), page_size=2
        )
        session_id = client.authenticate_to_pkg(
            deployment.rc_pkg_channel("alice"), token
        )
        for index, message in enumerate(messages):
            point = client.fetch_key(
                deployment.rc_pkg_channel("alice"),
                session_id,
                token.session_key,
                message.attribute_id,
                message.nonce,
            )
            assert client.decrypt_message(message, point) == (
                f"reading-{index}".encode()
            )

    def test_empty_backlog_single_empty_page(self, deployment):
        client = deployment.new_receiving_client(
            "alice", "pw", attributes=[ATTRIBUTE]
        )
        _token, messages = client.retrieve_all(
            deployment.rc_page_channel("alice"), page_size=8
        )
        assert messages == []
        assert client.stats["pages_fetched"] == 1

    def test_pages_served_metric(self, deployment):
        self.deposit(deployment, 4)
        client = deployment.new_receiving_client(
            "alice", "pw", attributes=[ATTRIBUTE]
        )
        client.retrieve_all(deployment.rc_page_channel("alice"), page_size=2)
        counters = deployment.registry.counter_values()
        assert counters["mws.mms.pages_served"] == 2
        histograms = deployment.registry.snapshot()["histograms"]
        assert histograms["mws.mms.page_size"]["count"] == 2


class TestInterop:
    """Old single-message clients against a sharded batch-aware MWS."""

    def test_single_deposit_and_retrieve_unchanged(self, deployment):
        device = deployment.new_smart_device("legacy-meter")
        client = deployment.new_receiving_client(
            "legacy-rc", "pw", attributes=[ATTRIBUTE]
        )
        response = device.deposit(
            deployment.sd_channel("legacy-meter"), ATTRIBUTE, b"legacy-reading"
        )
        assert response.accepted and response.message_id == 1
        results = client.retrieve_and_decrypt(
            deployment.rc_mws_channel("legacy-rc"),
            deployment.rc_pkg_channel("legacy-rc"),
        )
        assert [r.plaintext for r in results] == [b"legacy-reading"]

    def test_all_or_nothing_batch_endpoint_still_works(self, deployment):
        device = deployment.new_smart_device("legacy-meter")
        response = device.deposit_batch(
            deployment.sd_batch_channel("legacy-meter"),
            [(ATTRIBUTE, b"a"), (OTHER, b"b")],
        )
        assert response.accepted and response.message_ids == [1, 2]


class TestDeterminism:
    def run_workload(self):
        deployment = build_deployment(seed=b"det-batch")
        try:
            device = deployment.new_smart_device("meter-001")
            receipt = device.deposit_many(
                deployment.sd_many_channel("meter-001"),
                [(f"KIND{i % 3}-X-SV", f"r{i}".encode()) for i in range(8)],
            )
            client = deployment.new_receiving_client(
                "alice", "pw", attributes=["KIND0-X-SV", "KIND1-X-SV"]
            )
            client.retrieve_all(deployment.rc_page_channel("alice"), page_size=3)
            return (
                [(s.status, s.message_id, s.shard) for s in receipt.statuses],
                list(deployment.mws.message_db.shard_counts()),
                deployment.obs_dump_json(meta={"workload": "det-batch"}),
            )
        finally:
            deployment.close()

    def test_same_seed_same_transcript_and_dump(self):
        first = self.run_workload()
        second = self.run_workload()
        assert first[0] == second[0]  # per-item statuses incl. shards
        assert first[1] == second[1]  # shard occupancy
        assert first[2] == second[2]  # byte-identical obs dump


class TestHybridEncryptMany:
    def test_shared_encapsulation_individually_decryptable(self):
        deployment = build_deployment(shards=1)
        try:
            public = deployment.public_params
            identity = b"BATCH-IDENTITY"
            messages = [f"msg-{i}".encode() for i in range(5)]
            ciphertexts = hybrid_encrypt_many(public, identity, messages)
            assert len({c.sealed for c in ciphertexts}) == 5  # fresh IV each
            assert len({c.r_p.to_bytes() for c in ciphertexts}) == 1  # shared rP
            private = deployment.master.extract(identity)
            for ciphertext, message in zip(ciphertexts, messages):
                assert (
                    hybrid_decrypt(public, private.point, ciphertext) == message
                )
        finally:
            deployment.close()

    def test_roundtrip_through_wire_encoding(self):
        deployment = build_deployment(shards=1)
        try:
            public = deployment.public_params
            [ciphertext] = hybrid_encrypt_many(public, b"ID", [b"payload"])
            decoded = HybridCiphertext.from_bytes(
                ciphertext.to_bytes(), public.params
            )
            private = deployment.master.extract(b"ID")
            assert hybrid_decrypt(public, private.point, decoded) == b"payload"
        finally:
            deployment.close()
